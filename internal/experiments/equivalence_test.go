package experiments

// Equivalence tests for the engine refactor: the experiments package
// used to drive its matrices through a hand-wired worker pool plus a
// package-global name-keyed run cache; it now goes through
// internal/engine. These tests pin the contract that the move changed
// nothing observable — matrix output is deeply equal to direct
// sim.RunWorkload calls — and that the one intended change (the
// name-keyed cache's staleness bug) is actually fixed.

import (
	"reflect"
	"testing"

	"mobilecache/internal/engine"
	"mobilecache/internal/sim"
)

// TestMatrixMatchesDirectRuns: matrix() over the canonical scheme list
// returns, for every (machine, app), a report deeply equal to a direct
// sim.RunWorkload with the same derived seed.
func TestMatrixMatchesDirectRuns(t *testing.T) {
	opts := QuickOptions()
	opts.Engine = engine.New(engine.Config{}) // isolate from the shared default engine
	got, err := matrix(opts, allSchemes)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range allSchemes {
		cfg, err := sim.MachineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, app := range opts.Apps {
			want, err := sim.RunWorkload(cfg, app, appSeed(opts.Seed, i), opts.Accesses)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got[name][app.Name], want) {
				t.Fatalf("matrix report for %s/%s diverges from direct sim.RunWorkload", name, app.Name)
			}
		}
	}
}

// TestCachedRunMatchesDirect: the memoized single-cell path returns
// the same report as a cold direct run, on the first call and on the
// memo-served repeat.
func TestCachedRunMatchesDirect(t *testing.T) {
	opts := QuickOptions()
	opts.Engine = engine.New(engine.Config{})
	app := opts.Apps[1]
	cfg, err := sim.MachineByName("dp-sr")
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunWorkload(cfg, app, 42, opts.Accesses)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got, err := cachedRun(opts, "dp-sr", app, 42)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("cachedRun pass %d diverges from direct sim.RunWorkload", pass)
		}
	}
}

// TestRunWorkloadNoStaleCache is the regression test for the old
// package-global runCache: it keyed on (machine name, app name, seed,
// accesses), so a profile whose content changed under an unchanged
// name was served the previous profile's report. The engine memo keys
// on a content hash, so the perturbed profile must get a fresh,
// correct run.
func TestRunWorkloadNoStaleCache(t *testing.T) {
	opts := QuickOptions()
	opts.Engine = engine.New(engine.Config{})
	cfg, err := sim.MachineByName("baseline-sram")
	if err != nil {
		t.Fatal(err)
	}
	app := opts.Apps[0]
	base, err := runWorkload(opts, cfg, app, 1)
	if err != nil {
		t.Fatal(err)
	}

	perturbed := app
	perturbed.KernelShare += 0.2 // same Name, different content
	got, err := runWorkload(opts, cfg, perturbed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(got, base) {
		t.Fatal("content-modified profile was served the stale report")
	}
	want, err := sim.RunWorkload(cfg, perturbed, 1, opts.Accesses)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("perturbed-profile report diverges from direct simulation")
	}
}

// TestMatrixDeterministicAcrossEngines: two fresh engines (cold memo,
// cold arena) and the shared default produce identical matrices — the
// engine is an optimization, never an input.
func TestMatrixDeterministicAcrossEngines(t *testing.T) {
	opts := QuickOptions()
	runs := make([]map[string]map[string]sim.RunReport, 3)
	for i := range runs {
		o := opts
		if i < 2 {
			o.Engine = engine.New(engine.Config{})
		} // i == 2 uses the package default engine
		m, err := matrix(o, proposedSchemes)
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = m
	}
	if !reflect.DeepEqual(runs[0], runs[1]) || !reflect.DeepEqual(runs[0], runs[2]) {
		t.Fatal("matrix output depends on which engine ran it")
	}
}

// TestExperimentValuesEngineIndependent: a representative experiment's
// headline values are identical whether run on a dedicated engine or
// the shared default — the guarantee mcbench relies on when wiring one
// engine across every experiment of a process.
func TestExperimentValuesEngineIndependent(t *testing.T) {
	opts := QuickOptions()
	dedicated := opts
	dedicated.Engine = engine.New(engine.Config{})
	a, err := Run("E7", dedicated)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("E7", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Values, b.Values) {
		t.Fatalf("E7 values depend on the engine:\n%v\n%v", a.Values, b.Values)
	}
	var tbA, tbB []string
	for _, tb := range a.Tables {
		tbA = append(tbA, tb.String())
	}
	for _, tb := range b.Tables {
		tbB = append(tbB, tb.String())
	}
	if !reflect.DeepEqual(tbA, tbB) {
		t.Fatal("E7 rendered tables depend on the engine")
	}
}
