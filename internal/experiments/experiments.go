// Package experiments regenerates every table and figure of the
// paper's evaluation. Each experiment has an ID — E1..E12 are the
// reconstructed paper figures, E13..E20 ablation/robustness extensions,
// T1..T3 the tables — runs deterministically from Options, and returns
// rendered tables plus the headline scalar values that EXPERIMENTS.md
// records against the paper's numbers.
//
// The experiments are exposed three ways: programmatically via Run,
// from the command line via cmd/mcbench, and as benchmarks in the
// repository root's bench_test.go.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"mobilecache/internal/config"
	"mobilecache/internal/engine"
	"mobilecache/internal/report"
	"mobilecache/internal/runner"
	"mobilecache/internal/sample"
	"mobilecache/internal/sim"
	"mobilecache/internal/workload"
)

// Options scales an experiment run.
type Options struct {
	// Accesses is the trace length per app.
	Accesses int
	// Seed drives the workload generators.
	Seed uint64
	// Apps are the application profiles to evaluate.
	Apps []workload.Profile
	// Engine executes every simulation of the run — it supplies the
	// shared trace arena and the content-hash run memo; nil selects the
	// package-shared default engine. Results are independent of the
	// engine (memoized and cached-replay runs are bit-identical to
	// fresh ones) — it only removes redundant work.
	Engine *engine.Engine
	// Sample runs every simulation set-sampled at the given spec and
	// scales the reports back to full-cache estimates — a speed/
	// accuracy trade documented in EXPERIMENTS.md. The zero value
	// disables sampling (exact simulation). Fault-sensitivity
	// experiments (E21) should not be sampled: rare-event counts do
	// not extrapolate reliably from 1/Factor of the sets.
	Sample sample.Spec
}

// defaultEngine backs every experiment run that does not bring its own
// engine, so traces and memoized cells are shared across experiments
// within a process (mcbench runs E1..T3 back to back over the same
// apps).
var defaultEngine = engine.New(engine.Config{})

// eng resolves the effective engine for the run.
func (o Options) eng() *engine.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	return defaultEngine
}

// runWorkload is the engine-backed simulation entry every experiment
// uses: identical results to sim.RunWorkload, minus the redundant
// trace regeneration and re-simulation. The engine memo keys on a
// content hash of the machine config and profile, so experiments that
// perturb a config or profile under an unchanged name always get a
// fresh run.
func runWorkload(opts Options, cfg config.Machine, app workload.Profile, seed uint64) (sim.RunReport, error) {
	return opts.eng().RunOneSampled(context.Background(), engine.Cell{
		Machine: cfg.Name, Config: cfg, App: app.Name, Profile: app, Seed: seed,
	}, opts.Accesses, 0, opts.Sample)
}

// DefaultOptions is the full-size configuration cmd/mcbench uses.
func DefaultOptions() Options {
	return Options{Accesses: 400_000, Seed: 1, Apps: workload.Profiles()}
}

// QuickOptions is a reduced configuration for tests and benchmarks.
func QuickOptions() Options {
	return Options{Accesses: 80_000, Seed: 1, Apps: workload.Profiles()[:3]}
}

// Validate reports option errors.
func (o Options) Validate() error {
	if o.Accesses <= 0 {
		return fmt.Errorf("experiments: accesses must be positive")
	}
	if len(o.Apps) == 0 {
		return fmt.Errorf("experiments: no apps selected")
	}
	if err := o.Sample.Validate(); err != nil {
		return err
	}
	return nil
}

// Result is one experiment's rendered outcome.
type Result struct {
	// ID and Title identify the experiment.
	ID    string
	Title string
	// Paper states what the paper reports for this experiment (the
	// target shape).
	Paper string
	// Tables hold the regenerated data.
	Tables []*report.Table
	// Notes are one-line findings derived from the run.
	Notes []string
	// Values exposes headline scalars by name for tests and
	// EXPERIMENTS.md.
	Values map[string]float64
	// Figures holds rendered SVG documents by filename (without
	// directory); cmd/mcbench -svg writes them out.
	Figures map[string]string
}

func (r *Result) addFigure(name, svg string) {
	if r.Figures == nil {
		r.Figures = map[string]string{}
	}
	r.Figures[name] = svg
}

func (r *Result) addValue(name string, v float64) {
	if r.Values == nil {
		r.Values = map[string]float64{}
	}
	r.Values[name] = v
}

func (r *Result) addNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// experiment is one experiment implementation.
type experiment struct {
	title string
	paper string
	fn    func(Options) (Result, error)
}

// registry maps experiment IDs to implementations; filled by init
// functions across the package's files.
var registry = map[string]experiment{}

func register(id, title, paper string, fn func(Options) (Result, error)) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = experiment{title: title, paper: paper, fn: fn}
}

// IDs lists the registered experiment IDs in canonical order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// E-prefixed numerically, then T-prefixed numerically.
		a, b := ids[i], ids[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		var na, nb int
		fmt.Sscanf(a[1:], "%d", &na)
		fmt.Sscanf(b[1:], "%d", &nb)
		return na < nb
	})
	return ids
}

// Run executes one experiment by ID.
func Run(id string, opts Options) (Result, error) {
	r, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	res, err := r.fn(opts)
	if err != nil {
		return Result{}, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID, res.Title, res.Paper = id, r.title, r.paper
	return res, nil
}

// Title returns an experiment's title without running it.
func Title(id string) string { return registry[id].title }

// appSeed derives a per-app seed so apps differ but runs reproduce.
func appSeed(base uint64, appIndex int) uint64 {
	return base*1_000_003 + uint64(appIndex)*7919
}

// cachedRun runs a standard machine on an app through the engine. The
// engine's bounded run memo makes repeats free: several experiments
// (E7, E8, T2, T3) share the same (machine, app, seed, accesses)
// cells, and since every run is deterministic, memoization is
// transparent and cuts a full mcbench sweep substantially. Unlike the
// old package-global cache this memo keys on the content hash
// internal/checkpoint.KeyOf computes, so it can never serve a stale
// report for modified inputs, and it is bounded.
func cachedRun(opts Options, machineName string, app workload.Profile, seed uint64) (sim.RunReport, error) {
	cfg, err := sim.MachineByName(machineName)
	if err != nil {
		return sim.RunReport{}, err
	}
	return runWorkload(opts, cfg, app, seed)
}

// matrix runs every app on every named standard machine through the
// engine's bounded, panic-containing worker pool. Reports are keyed
// [machine][app]. Results are deterministic regardless of scheduling:
// each cell is an independent cold-machine simulation (memoized by
// the engine) and the collector receives outcomes in cell order.
func matrix(opts Options, machineNames []string) (map[string]map[string]sim.RunReport, error) {
	var cells []engine.Cell
	for _, name := range machineNames {
		cfg, err := sim.MachineByName(name)
		if err != nil {
			return nil, err
		}
		for i, app := range opts.Apps {
			cells = append(cells, engine.Cell{
				Machine: name, Config: cfg, App: app.Name, Profile: app, Seed: appSeed(opts.Seed, i),
			})
		}
	}

	col := engine.NewCollector()
	_, err := opts.eng().Execute(context.Background(),
		engine.Plan{Cells: cells, Accesses: opts.Accesses, Sample: opts.Sample}, engine.ExecOptions{}, col)
	if err != nil {
		var re *runner.RunError
		if errors.As(err, &re) {
			return nil, fmt.Errorf("%s on %s: %w", re.Cell.App, re.Cell.Machine, re.Err)
		}
		return nil, err
	}
	return col.ByMachine, nil
}

// appNames lists the option's app names in order.
func appNames(opts Options) []string {
	names := make([]string, len(opts.Apps))
	for i, a := range opts.Apps {
		names[i] = a.Name
	}
	return names
}

// allSchemes is the canonical machine ordering in comparison tables.
var allSchemes = []string{"baseline-sram", "baseline-stt", "sp", "sp-mr", "dp", "dp-sr"}

// proposedSchemes are the paper's four designs (excluding baselines).
var proposedSchemes = []string{"sp", "sp-mr", "dp", "dp-sr"}
