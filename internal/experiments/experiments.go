// Package experiments regenerates every table and figure of the
// paper's evaluation. Each experiment has an ID — E1..E12 are the
// reconstructed paper figures, E13..E20 ablation/robustness extensions,
// T1..T3 the tables — runs deterministically from Options, and returns
// rendered tables plus the headline scalar values that EXPERIMENTS.md
// records against the paper's numbers.
//
// The experiments are exposed three ways: programmatically via Run,
// from the command line via cmd/mcbench, and as benchmarks in the
// repository root's bench_test.go.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"mobilecache/internal/config"
	"mobilecache/internal/report"
	"mobilecache/internal/runner"
	"mobilecache/internal/sim"
	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

// Options scales an experiment run.
type Options struct {
	// Accesses is the trace length per app.
	Accesses int
	// Seed drives the workload generators.
	Seed uint64
	// Apps are the application profiles to evaluate.
	Apps []workload.Profile
	// TraceStore supplies memoized packed traces to every simulation in
	// the run; nil selects the package-shared default store. Results are
	// independent of the store (cached replay is bit-identical to
	// generation) — it only removes redundant generator work.
	TraceStore *tracestore.Store
}

// defaultTraceStore backs every experiment run that does not bring its
// own store, so traces are shared across experiments within a process
// (mcbench runs E1..T3 back to back over the same apps).
var defaultTraceStore = tracestore.New(tracestore.DefaultBudgetBytes)

// store resolves the effective trace store for the run.
func (o Options) store() *tracestore.Store {
	if o.TraceStore != nil {
		return o.TraceStore
	}
	return defaultTraceStore
}

// runWorkload is the store-aware simulation entry every experiment
// uses: identical results to sim.RunWorkload, minus the redundant
// trace regeneration.
func runWorkload(opts Options, cfg config.Machine, app workload.Profile, seed uint64) (sim.RunReport, error) {
	return sim.RunWorkloadFrom(opts.store(), cfg, app, seed, opts.Accesses)
}

// DefaultOptions is the full-size configuration cmd/mcbench uses.
func DefaultOptions() Options {
	return Options{Accesses: 400_000, Seed: 1, Apps: workload.Profiles()}
}

// QuickOptions is a reduced configuration for tests and benchmarks.
func QuickOptions() Options {
	return Options{Accesses: 80_000, Seed: 1, Apps: workload.Profiles()[:3]}
}

// Validate reports option errors.
func (o Options) Validate() error {
	if o.Accesses <= 0 {
		return fmt.Errorf("experiments: accesses must be positive")
	}
	if len(o.Apps) == 0 {
		return fmt.Errorf("experiments: no apps selected")
	}
	return nil
}

// Result is one experiment's rendered outcome.
type Result struct {
	// ID and Title identify the experiment.
	ID    string
	Title string
	// Paper states what the paper reports for this experiment (the
	// target shape).
	Paper string
	// Tables hold the regenerated data.
	Tables []*report.Table
	// Notes are one-line findings derived from the run.
	Notes []string
	// Values exposes headline scalars by name for tests and
	// EXPERIMENTS.md.
	Values map[string]float64
	// Figures holds rendered SVG documents by filename (without
	// directory); cmd/mcbench -svg writes them out.
	Figures map[string]string
}

func (r *Result) addFigure(name, svg string) {
	if r.Figures == nil {
		r.Figures = map[string]string{}
	}
	r.Figures[name] = svg
}

func (r *Result) addValue(name string, v float64) {
	if r.Values == nil {
		r.Values = map[string]float64{}
	}
	r.Values[name] = v
}

func (r *Result) addNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// experiment is one experiment implementation.
type experiment struct {
	title string
	paper string
	fn    func(Options) (Result, error)
}

// registry maps experiment IDs to implementations; filled by init
// functions across the package's files.
var registry = map[string]experiment{}

func register(id, title, paper string, fn func(Options) (Result, error)) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = experiment{title: title, paper: paper, fn: fn}
}

// IDs lists the registered experiment IDs in canonical order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// E-prefixed numerically, then T-prefixed numerically.
		a, b := ids[i], ids[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		var na, nb int
		fmt.Sscanf(a[1:], "%d", &na)
		fmt.Sscanf(b[1:], "%d", &nb)
		return na < nb
	})
	return ids
}

// Run executes one experiment by ID.
func Run(id string, opts Options) (Result, error) {
	r, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	res, err := r.fn(opts)
	if err != nil {
		return Result{}, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID, res.Title, res.Paper = id, r.title, r.paper
	return res, nil
}

// Title returns an experiment's title without running it.
func Title(id string) string { return registry[id].title }

// appSeed derives a per-app seed so apps differ but runs reproduce.
func appSeed(base uint64, appIndex int) uint64 {
	return base*1_000_003 + uint64(appIndex)*7919
}

// runCache memoizes standard-machine runs within the process. Several
// experiments (E7, E8, T2, T3) share the same (machine, app, seed,
// accesses) simulations; since every run is deterministic, caching is
// transparent and cuts a full mcbench sweep substantially.
var runCache sync.Map // cacheKey -> sim.RunReport

type cacheKey struct {
	machine  string
	app      string
	seed     uint64
	accesses int
}

// cachedRun runs a standard machine on an app, memoized. The underlying
// trace comes from the run's trace store, so even a cache miss only
// pays replay, not regeneration, once any machine has simulated the
// same (app, seed, accesses).
func cachedRun(opts Options, machineName string, app workload.Profile, seed uint64) (sim.RunReport, error) {
	key := cacheKey{machineName, app.Name, seed, opts.Accesses}
	if v, ok := runCache.Load(key); ok {
		return v.(sim.RunReport), nil
	}
	cfg, err := sim.MachineByName(machineName)
	if err != nil {
		return sim.RunReport{}, err
	}
	rep, err := runWorkload(opts, cfg, app, seed)
	if err != nil {
		return sim.RunReport{}, err
	}
	runCache.Store(key, rep)
	return rep, nil
}

// matrix runs every app on every named standard machine, in parallel
// across the machine x app grid on the bounded, panic-containing
// worker pool from internal/runner. Reports are keyed [machine][app].
// Results are deterministic regardless of scheduling: each cell is an
// independent cold-machine simulation (memoized by cachedRun) and
// outcomes are collected in cell order.
func matrix(opts Options, machineNames []string) (map[string]map[string]sim.RunReport, error) {
	profiles := make(map[string]workload.Profile, len(opts.Apps))
	var cells []runner.Cell
	for _, name := range machineNames {
		if _, err := sim.MachineByName(name); err != nil {
			return nil, err
		}
		for i, app := range opts.Apps {
			profiles[app.Name] = app
			cells = append(cells, runner.Cell{Machine: name, App: app.Name, Seed: appSeed(opts.Seed, i)})
		}
	}

	outcomes, err := runner.Run(context.Background(), runner.Config{}, cells,
		func(_ context.Context, c runner.Cell) (sim.RunReport, error) {
			return cachedRun(opts, c.Machine, profiles[c.App], c.Seed)
		})
	if err != nil {
		var re *runner.RunError
		if errors.As(err, &re) {
			return nil, fmt.Errorf("%s on %s: %w", re.Cell.App, re.Cell.Machine, re.Err)
		}
		return nil, err
	}

	out := make(map[string]map[string]sim.RunReport, len(machineNames))
	for _, name := range machineNames {
		out[name] = make(map[string]sim.RunReport, len(opts.Apps))
	}
	for _, o := range outcomes {
		out[o.Cell.Machine][o.Cell.App] = o.Value
	}
	return out, nil
}

// appNames lists the option's app names in order.
func appNames(opts Options) []string {
	names := make([]string, len(opts.Apps))
	for i, a := range opts.Apps {
		names[i] = a.Name
	}
	return names
}

// allSchemes is the canonical machine ordering in comparison tables.
var allSchemes = []string{"baseline-sram", "baseline-stt", "sp", "sp-mr", "dp", "dp-sr"}

// proposedSchemes are the paper's four designs (excluding baselines).
var proposedSchemes = []string{"sp", "sp-mr", "dp", "dp-sr"}
