package experiments

import (
	"fmt"

	"mobilecache/internal/report"
	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

func init() {
	register("E19", "Workload validation: reuse-distance fingerprints",
		"the synthetic traces must exhibit the per-domain footprints and locality the substitution claims (DESIGN.md) — kernel sets small and reusable, user sets larger",
		runE19)
}

// runE19 fingerprints every app's generated trace with the streaming
// reuse-distance analyzer and checks the profile's claims.
func runE19(opts Options) (Result, error) {
	var res Result
	tb := report.NewTable("E19: per-domain reuse fingerprints of the generated traces",
		"app", "domain", "accesses", "footprint", "est hitrate @256KB", "@512KB", "@1MB")
	blocks := func(bytes uint64) uint64 { return bytes / 64 }
	var userFPsum, kernelFPsum float64
	for i, app := range opts.Apps {
		recs, err := workload.Generate(app, appSeed(opts.Seed, i), opts.Accesses)
		if err != nil {
			return res, err
		}
		ra := trace.Analyze(trace.NewSliceSource(recs), 64)
		for _, d := range []trace.Domain{trace.User, trace.Kernel} {
			st := ra.Stats(d)
			fp := st.DistinctBlocks * 64
			tb.AddRow(app.Name, d.String(),
				fmt.Sprint(st.Accesses),
				report.Bytes(fp),
				report.Pct(st.HitRateAt(blocks(256<<10))),
				report.Pct(st.HitRateAt(blocks(512<<10))),
				report.Pct(st.HitRateAt(blocks(1<<20))))
			res.addValue(fmt.Sprintf("fp_%s_%s", app.Name, d), float64(fp))
			if d == trace.User {
				userFPsum += float64(fp)
			} else {
				kernelFPsum += float64(fp)
			}
		}
	}
	res.Tables = append(res.Tables, tb)
	n := float64(len(opts.Apps))
	res.addValue("avg_user_footprint", userFPsum/n)
	res.addValue("avg_kernel_footprint", kernelFPsum/n)
	res.addNote("average footprints: user %s, kernel %s — the kernel set is the smaller, denser one, as the partition sizing assumes",
		report.Bytes(uint64(userFPsum/n)), report.Bytes(uint64(kernelFPsum/n)))
	return res, nil
}
