package experiments

import (
	"fmt"

	"mobilecache/internal/cache"
	"mobilecache/internal/core"
	"mobilecache/internal/cpu"
	"mobilecache/internal/energy"
	"mobilecache/internal/mem"
	"mobilecache/internal/report"
	"mobilecache/internal/sim"
	"mobilecache/internal/sttram"
	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

func init() {
	register("E10", "Retention-time sensitivity of the kernel segment",
		"shorter retention cheapens writes but adds refresh/expiry cost; an intermediate retention minimizes kernel-segment energy",
		runE10)
	register("E11", "Refresh policy ablation for the short-retention segment",
		"how the short-retention array stays correct — full refresh vs dirty-only vs eager writeback — trades refresh energy against extra misses",
		runE11)
}

// buildStaticWithKernel builds the standard SP machine geometry but
// with the kernel segment's technology parameters overridden.
func buildStaticWithKernel(params *energy.Params, refresh sttram.RefreshPolicy) (*sim.Machine, error) {
	dram := mem.NewDRAM(mem.DefaultDRAMConfig())
	wb := func(addr uint64) { dram.Write(addr) }
	user := core.SegmentConfig{
		Name: "L2-user", SizeBytes: 512 * 1024, Ways: 16, BlockBytes: 64,
		Policy: cache.LRU, Tech: energy.STTMedium, Refresh: sttram.DirtyOnly,
	}
	kernel := core.SegmentConfig{
		Name: "L2-kernel", SizeBytes: 256 * 1024, Ways: 16, BlockBytes: 64,
		Policy: cache.LRU, Tech: energy.STTShort, Refresh: refresh,
		ParamsOverride: params,
	}
	sp, err := core.NewStaticPartition("sp-sweep", user, kernel, wb)
	if err != nil {
		return nil, err
	}
	hier, err := mem.NewHierarchy(mem.DefaultL1I(), mem.DefaultL1D(), sp, dram)
	if err != nil {
		return nil, err
	}
	c, err := cpu.New(cpu.DefaultConfig(), hier)
	if err != nil {
		return nil, err
	}
	return &sim.Machine{CPU: c, Hier: hier, L2: sp, DRAM: dram, Static: sp}, nil
}

// runE10 sweeps the kernel segment's retention target across six
// decades and reports where its energy bottoms out.
func runE10(opts Options) (Result, error) {
	var res Result
	app := opts.Apps[0]
	retentions := []float64{2.65e-6, 26.5e-6, 265e-6, 2.65e-3, 26.5e-3, 3.24}

	tb := report.NewTable(fmt.Sprintf("E10: kernel-segment energy vs retention target (app %s)", app.Name),
		"retention", "write (pJ)", "kernel energy", "refresh energy", "refreshes", "expiries", "IPC")
	bestRet, bestE := 0.0, -1.0
	for _, ret := range retentions {
		params := energy.ParamsForRetention(ret)
		m, err := buildStaticWithKernel(&params, sttram.DirtyOnly)
		if err != nil {
			return res, err
		}
		gen, err := workload.NewGenerator(app, appSeed(opts.Seed, 0), uint64(opts.Accesses/maxInt(app.Phases, 1)))
		if err != nil {
			return res, err
		}
		rep := sim.RunTrace(m, app.Name, trace.NewLimitSource(gen, opts.Accesses), 0)
		kb := m.Static.SegmentEnergy(trace.Kernel)
		ks := m.Static.SegmentStats(trace.Kernel)
		tb.AddRow(fmt.Sprintf("%.3gs", ret),
			fmt.Sprintf("%.0f", params.WritePJ),
			report.Joules(kb.Total()), report.Joules(kb.RefreshJ),
			fmt.Sprint(ks.Refreshes), fmt.Sprint(ks.CleanExpiries+ks.ExpiryInvalidations),
			fmt.Sprintf("%.4f", rep.IPC()))
		res.addValue(fmt.Sprintf("kernel_energy_ret%.3g", ret), kb.Total())
		if bestE < 0 || kb.Total() < bestE {
			bestE, bestRet = kb.Total(), ret
		}
	}
	res.Tables = append(res.Tables, tb)
	res.addValue("best_retention_s", bestRet)
	res.addNote("kernel-segment energy is minimized at a %.3gs retention target — short enough for cheap writes, long enough to bound refresh", bestRet)
	return res, nil
}

// runE11 fixes the short-retention kernel segment and varies only the
// refresh policy.
func runE11(opts Options) (Result, error) {
	var res Result
	app := opts.Apps[0]
	tb := report.NewTable(fmt.Sprintf("E11: refresh policy ablation, short-retention kernel segment (app %s)", app.Name),
		"policy", "kernel energy", "refresh energy", "refreshes", "eager wbs", "expiries", "kernel missrate", "dirty losses")
	for _, pol := range []sttram.RefreshPolicy{sttram.PeriodicAll, sttram.DirtyOnly, sttram.EagerWriteback} {
		m, err := buildStaticWithKernel(nil, pol)
		if err != nil {
			return res, err
		}
		gen, err := workload.NewGenerator(app, appSeed(opts.Seed, 0), uint64(opts.Accesses/maxInt(app.Phases, 1)))
		if err != nil {
			return res, err
		}
		sim.RunTrace(m, app.Name, trace.NewLimitSource(gen, opts.Accesses), 0)
		kb := m.Static.SegmentEnergy(trace.Kernel)
		ks := m.Static.SegmentStats(trace.Kernel)
		tb.AddRow(pol.String(),
			report.Joules(kb.Total()), report.Joules(kb.RefreshJ),
			fmt.Sprint(ks.Refreshes), fmt.Sprint(ks.EagerWritebacks),
			fmt.Sprint(ks.CleanExpiries+ks.ExpiryInvalidations),
			report.Pct(ks.DomainMissRate(trace.Kernel)),
			fmt.Sprint(ks.DirtyExpiries))
		res.addValue("kernel_energy_"+pol.String(), kb.Total())
		res.addValue("kernel_missrate_"+pol.String(), ks.DomainMissRate(trace.Kernel))
		res.addValue("dirty_expiries_"+pol.String(), float64(ks.DirtyExpiries))
	}
	res.Tables = append(res.Tables, tb)
	res.addNote("no policy loses dirty data; periodic-all pays the most refresh energy, eager-writeback converts it into extra misses")
	return res, nil
}
