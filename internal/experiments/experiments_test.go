package experiments

import (
	"strings"
	"testing"

	"mobilecache/internal/workload"
)

// quick returns small-but-meaningful options for tests.
func quick() Options {
	return Options{Accesses: 60_000, Seed: 1, Apps: workload.Profiles()[:3]}
}

func runOne(t *testing.T, id string, opts Options) Result {
	t.Helper()
	res, err := Run(id, opts)
	if err != nil {
		t.Fatalf("Run(%s): %v", id, err)
	}
	if res.ID != id || res.Title == "" || res.Paper == "" {
		t.Fatalf("%s: metadata incomplete: %+v", id, res)
	}
	if len(res.Tables) == 0 {
		t.Fatalf("%s: no tables", id)
	}
	for _, tb := range res.Tables {
		if tb.NumRows() == 0 {
			t.Fatalf("%s: empty table %q", id, tb.Title)
		}
		if !strings.Contains(tb.String(), tb.Columns[0]) {
			t.Fatalf("%s: table render broken", id)
		}
	}
	return res
}

func TestIDsCompleteAndOrdered(t *testing.T) {
	ids := IDs()
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "T1", "T2", "T3"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids[%d] = %s, want %s (full: %v)", i, ids[i], want[i], ids)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("E99", quick()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	bad := quick()
	bad.Accesses = 0
	if _, err := Run("E5", bad); err == nil {
		t.Fatal("zero accesses accepted")
	}
	bad = quick()
	bad.Apps = nil
	if _, err := Run("E5", bad); err == nil {
		t.Fatal("no apps accepted")
	}
}

func TestE1KernelShareAbove40(t *testing.T) {
	// Use all ten apps: the >40% claim is an average over the suite.
	opts := quick()
	opts.Apps = workload.Profiles()
	res := runOne(t, "E1", opts)
	if got := res.Values["avg_l2_kernel_share"]; got < 0.40 {
		t.Fatalf("average L2 kernel share = %.3f, want >= 0.40 (paper's motivation)", got)
	}
}

func TestE2InterferenceExistsAndIsolationRemovesIt(t *testing.T) {
	// Interference needs enough accesses to pressure the shared cache;
	// run this one at a larger scale than the other quick tests.
	opts := quick()
	opts.Accesses = 200_000
	res := runOne(t, "E2", opts)
	if res.Values["avg_interference_per_1k"] <= 0 {
		t.Fatal("no interference measured in the shared baseline")
	}
}

func TestE3PartitionShrinks(t *testing.T) {
	res := runOne(t, "E3", quick())
	if res.Values["shrink_fraction"] <= 0 {
		t.Fatalf("no shrink achieved: %+v", res.Values)
	}
	// Miss-rate promise: within the 1-point tolerance.
	if res.Values["partition_missrate"] > res.Values["baseline_missrate"]+0.02+1e-9 {
		t.Fatalf("partition miss rate %.4f exceeds budget over baseline %.4f",
			res.Values["partition_missrate"], res.Values["baseline_missrate"])
	}
}

func TestE4KernelBlocksDieYoung(t *testing.T) {
	// Lifetime statistics need eviction counts; run at a larger scale
	// than the other quick tests.
	opts := quick()
	opts.Accesses = 200_000
	res := runOne(t, "E4", opts)
	// The premise of the multi-retention assignment: kernel blocks
	// live distinctly shorter lives than user blocks, and both
	// domains' lifetimes fit a millisecond-class retention window
	// (which is why the DP-SR design can relax retention that far).
	if kl, ul := res.Values["kernel_mean_lifetime"], res.Values["user_mean_lifetime"]; kl >= ul {
		t.Fatalf("kernel mean lifetime %.0f not below user mean lifetime %.0f", kl, ul)
	}
	if got := res.Values["kernel_life_below_ms_ret"]; got < 0.9 {
		t.Fatalf("only %.2f of kernel lifetimes fit the ms retention window", got)
	}
	if got := res.Values["user_life_below_med_ret"]; got < 0.95 {
		t.Fatalf("only %.2f of user lifetimes fit medium retention", got)
	}
	// Kernel lifetimes must fit the short window better than user
	// lifetimes do — the reason the kernel segment can use the
	// cheapest-write class.
	if res.Values["kernel_life_below_short_ret"] < res.Values["user_life_below_ms_ret"]-1 {
		t.Fatal("inconsistent lifetime CDFs")
	}
}

func TestE5TechTable(t *testing.T) {
	res := runOne(t, "E5", quick())
	if res.Values["leakage_ratio_sram_over_stt"] < 3 {
		t.Fatal("SRAM/STT leakage ratio implausibly low")
	}
}

func TestE6LeakageDominatesBaseline(t *testing.T) {
	res := runOne(t, "E6", quick())
	if got := res.Values["leakfrac_baseline-sram"]; got < 0.5 {
		t.Fatalf("baseline leakage fraction = %.2f, want > 0.5 (mobile idle-heavy premise)", got)
	}
	// Every proposed scheme must beat the SRAM baseline.
	base := res.Values["total_baseline-sram"]
	for _, s := range proposedSchemes {
		if res.Values["total_"+s] >= base {
			t.Fatalf("scheme %s total %.3g not below baseline %.3g", s, res.Values["total_"+s], base)
		}
	}
}

func TestE7HeadlineEnergyShape(t *testing.T) {
	res := runOne(t, "E7", quick())
	spmr := res.Values["saving_sp-mr"]
	dpsr := res.Values["saving_dp-sr"]
	sp := res.Values["saving_sp"]
	// Shape: sp saves something; sp-mr saves a lot (paper ~75%);
	// dp-sr saves the most (paper ~85%).
	if sp <= 0.05 {
		t.Fatalf("sp saving = %.3f, want > 0.05", sp)
	}
	if spmr < 0.60 {
		t.Fatalf("sp-mr saving = %.3f, want >= 0.60 (paper: ~0.75)", spmr)
	}
	if dpsr < spmr {
		t.Fatalf("dp-sr saving %.3f below sp-mr %.3f — dynamic must win", dpsr, spmr)
	}
	if dpsr < 0.70 {
		t.Fatalf("dp-sr saving = %.3f, want >= 0.70 (paper: ~0.85)", dpsr)
	}
}

func TestE8PerformanceLossSmall(t *testing.T) {
	res := runOne(t, "E8", quick())
	for _, s := range proposedSchemes {
		loss := res.Values["perf_loss_"+s]
		if loss > 0.10 {
			t.Fatalf("%s performance loss %.3f exceeds 10%% (paper: 2-3%%)", s, loss)
		}
		if loss < -0.02 {
			t.Fatalf("%s gained %.3f performance — suspicious", s, -loss)
		}
	}
}

func TestE9ControllerAdapts(t *testing.T) {
	res := runOne(t, "E9", quick())
	if res.Values["epochs"] < 3 {
		t.Fatalf("only %.0f epochs recorded", res.Values["epochs"])
	}
	if res.Values["distinct_allocations"] < 2 {
		t.Fatal("controller never changed its allocation")
	}
	if res.Values["gated_epoch_fraction"] <= 0 {
		t.Fatal("controller never gated any way")
	}
}

func TestE10RetentionSweetSpot(t *testing.T) {
	res := runOne(t, "E10", quick())
	best := res.Values["best_retention_s"]
	if best <= 0 {
		t.Fatal("no best retention found")
	}
	// The extremes must not win: shortest retention pays refresh,
	// longest pays write energy.
	if best >= 3.24 {
		t.Fatalf("best retention %.3g at the long extreme — write-cost model broken", best)
	}
}

func TestE11NoDirtyLossAnyPolicy(t *testing.T) {
	res := runOne(t, "E11", quick())
	for _, pol := range []string{"periodic-all", "dirty-only", "eager-writeback"} {
		if res.Values["dirty_expiries_"+pol] != 0 {
			t.Fatalf("policy %s lost dirty data", pol)
		}
	}
	// Periodic refresh must cost the most refresh energy; its miss
	// rate must be the lowest (no expiry misses).
	if res.Values["kernel_missrate_periodic-all"] > res.Values["kernel_missrate_eager-writeback"]+1e-9 {
		t.Fatal("periodic refresh should not miss more than eager writeback")
	}
}

func TestE12AblationMoves(t *testing.T) {
	res := runOne(t, "E12", quick())
	if res.Values["best_norm_energy"] >= res.Values["worst_norm_energy"] {
		t.Fatal("ablation shows no sensitivity to controller knobs")
	}
	if res.Values["best_norm_energy"] >= 1 {
		t.Fatal("dynamic design never beat the baseline in the ablation")
	}
}

func TestE13PoliciesComparable(t *testing.T) {
	res := runOne(t, "E13", quick())
	// LRU must not be beaten by Random on these reuse-heavy streams,
	// and the tree-PLRU approximation must stay near exact LRU.
	lru := res.Values["baseline_missrate_lru"]
	random := res.Values["baseline_missrate_random"]
	plru := res.Values["baseline_missrate_plru"]
	if lru > random+0.01 {
		t.Fatalf("LRU miss %.3f worse than random %.3f", lru, random)
	}
	if plru > lru+0.05 {
		t.Fatalf("PLRU miss %.3f too far from LRU %.3f", plru, lru)
	}
}

func TestE14EnergyGrowsMissSaturates(t *testing.T) {
	res := runOne(t, "E14", quick())
	// Energy must grow with installed capacity...
	if res.Values["energy_2048k"] <= res.Values["energy_256k"] {
		t.Fatal("bigger cache did not cost more energy")
	}
	// ...while the miss rate is monotone non-increasing.
	prev := 1.0
	for _, k := range []string{"missrate_256k", "missrate_512k", "missrate_1024k", "missrate_2048k"} {
		if res.Values[k] > prev+0.01 {
			t.Fatalf("%s = %.3f grew with size", k, res.Values[k])
		}
		prev = res.Values[k]
	}
}

func TestE15SavingsGrowWithIdle(t *testing.T) {
	res := runOne(t, "E15", quick())
	if res.Values["spmr_saving_idlest"] < res.Values["spmr_saving_active"] {
		t.Fatalf("idle time reduced sp-mr saving: %.3f -> %.3f",
			res.Values["spmr_saving_active"], res.Values["spmr_saving_idlest"])
	}
	if res.Values["spmr_saving_idlest"] < 0.6 {
		t.Fatalf("idle saving = %.3f, want leakage-dominated regime", res.Values["spmr_saving_idlest"])
	}
}

func TestE16DRAMModelRobust(t *testing.T) {
	res := runOne(t, "E16", quick())
	for _, s := range []string{"sp-mr", "dp-sr"} {
		flat := res.Values["flat_saving_"+s]
		open := res.Values["openpage_saving_"+s]
		if diff := flat - open; diff > 0.08 || diff < -0.08 {
			t.Fatalf("%s saving moved %.3f between DRAM models (flat %.3f, open %.3f)", s, diff, flat, open)
		}
	}
}

func TestE17PrefetchRobust(t *testing.T) {
	res := runOne(t, "E17", quick())
	if res.Values["base_ipc_gain_from_pf"] <= 0 {
		t.Fatal("prefetcher did not help the baseline — model inert")
	}
	for _, s := range []string{"sp-mr", "dp-sr"} {
		n, p := res.Values["nopf_saving_"+s], res.Values["pf_saving_"+s]
		if diff := n - p; diff > 0.10 || diff < -0.10 {
			t.Fatalf("%s saving moved %.3f with prefetching (no-pf %.3f, pf %.3f)", s, diff, n, p)
		}
	}
}

func TestE18DrowsyBetweenBaselineAndSTT(t *testing.T) {
	res := runOne(t, "E18", quick())
	drowsy := res.Values["norm_energy_baseline-drowsy"]
	spmr := res.Values["norm_energy_sp-mr"]
	if drowsy >= 1 {
		t.Fatalf("drowsy norm energy %.3f did not beat the baseline", drowsy)
	}
	// The peripheral floor keeps drowsy above the technology change.
	if drowsy <= spmr {
		t.Fatalf("drowsy %.3f beat sp-mr %.3f — peripheral floor missing", drowsy, spmr)
	}
	// Drowsy is state-preserving: essentially no performance cost.
	if loss := 1 - res.Values["norm_ipc_baseline-drowsy"]; loss > 0.02 {
		t.Fatalf("drowsy performance loss %.3f too high for a state-preserving technique", loss)
	}
}

func TestE19FootprintsMatchClaims(t *testing.T) {
	res := runOne(t, "E19", quick())
	// Kernel footprints must stay small (they must fit the 256KB
	// segment) and user footprints must be the larger ones on average.
	if res.Values["avg_kernel_footprint"] > 300*1024 {
		t.Fatalf("avg kernel footprint %.0f exceeds the kernel segment's ballpark", res.Values["avg_kernel_footprint"])
	}
	if res.Values["avg_user_footprint"] <= 0 {
		t.Fatal("no user footprint measured")
	}
}

func TestE20MechanismsIsolate(t *testing.T) {
	opts := quick()
	opts.Accesses = 150_000
	res := runOne(t, "E20", opts)
	// All isolation mechanisms must eliminate interference.
	if res.Values["interference_setpart"] != 0 {
		t.Fatalf("set partition interfered %v times", res.Values["interference_setpart"])
	}
	// Only the segment design saves energy (it shrinks); the in-place
	// mechanisms keep the full array powered.
	if res.Values["energy_segments"] >= res.Values["energy_setpart"] {
		t.Fatal("segment shrink did not save energy vs in-place partitioning")
	}
	// All mechanisms stay within a few points of the shared miss rate.
	shared := res.Values["missrate_shared"]
	for _, k := range []string{"missrate_segments", "missrate_setpart", "missrate_waypart"} {
		if diff := res.Values[k] - shared; diff > 0.05 {
			t.Fatalf("%s = %.3f, way above shared %.3f", k, res.Values[k], shared)
		}
	}
}

func TestE21FaultsCostEnergyDeterministically(t *testing.T) {
	res := runOne(t, "E21", quick())
	for _, name := range []string{"sp-mr", "dp-sr"} {
		// Ideal cells must record zero faults; the worst BER must not.
		if res.Values["fault_expiries_"+name+"_ber0e+00"] != 0 {
			t.Fatalf("%s: faults at BER 0", name)
		}
		if res.Values["fault_expiries_"+name+"_ber1e-03"] == 0 {
			t.Fatalf("%s: no faults at BER 1e-3", name)
		}
		if res.Values["energy_overhead_pct_"+name] < 0 {
			t.Fatalf("%s: faults reduced energy: %+.2f%%", name, res.Values["energy_overhead_pct_"+name])
		}
	}
	// Same options, same fault seed, same numbers.
	again := runOne(t, "E21", quick())
	for k, v := range res.Values {
		if again.Values[k] != v {
			t.Fatalf("E21 not deterministic: %s %v -> %v", k, v, again.Values[k])
		}
	}
}

func TestT1T2Render(t *testing.T) {
	runOne(t, "T1", quick())
	res := runOne(t, "T2", quick())
	if res.Values["saving_sp-mr"] <= res.Values["saving_sp"] {
		t.Fatal("T2: multi-retention must beat plain SRAM partition")
	}
}

func TestT3SeedRobust(t *testing.T) {
	opts := quick()
	opts.Apps = opts.Apps[:2] // T3 runs three seeds; keep it cheap
	res := runOne(t, "T3", opts)
	// The savings must be stable across seeds: stddev well below the
	// mean effect size.
	for _, s := range []string{"sp-mr", "dp-sr"} {
		mean := res.Values["saving_mean_"+s]
		sd := res.Values["saving_stddev_"+s]
		if mean <= 0.4 {
			t.Fatalf("%s mean saving %.3f implausibly low", s, mean)
		}
		if sd > mean/4 {
			t.Fatalf("%s saving unstable across seeds: mean %.3f stddev %.3f", s, mean, sd)
		}
	}
}

func TestFiguresAttached(t *testing.T) {
	res := runOne(t, "E7", quick())
	svg, ok := res.Figures["e7_normalized_energy.svg"]
	if !ok || !strings.HasPrefix(svg, "<svg") {
		t.Fatal("E7 did not attach its figure")
	}
	res = runOne(t, "E9", quick())
	svg, ok = res.Figures["e9_adaptation.svg"]
	if !ok || !strings.Contains(svg, "user ways") {
		t.Fatal("E9 did not attach its trajectory figure")
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	a := runOne(t, "E7", quick())
	b := runOne(t, "E7", quick())
	for k, v := range a.Values {
		if b.Values[k] != v {
			t.Fatalf("value %s differs across identical runs: %g vs %g", k, v, b.Values[k])
		}
	}
}
