package experiments

import (
	"fmt"

	"mobilecache/internal/core"
	"mobilecache/internal/cpu"
	"mobilecache/internal/mem"
	"mobilecache/internal/report"
	"mobilecache/internal/sim"
	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

func init() {
	register("E20", "Partitioning mechanism comparison",
		"the same isolation goal can be met by separate segments (the paper's SP), OS page coloring (set partitioning) or way partitioning — with different granularity and shrink ability",
		runE20)
}

// buildSetPartMachine assembles a machine with a set-partitioned 1MB
// SRAM L2 (userSets of 1024 to the user domain).
func buildSetPartMachine(userSets int) (*sim.Machine, error) {
	dram := mem.NewDRAM(mem.DefaultDRAMConfig())
	wb := func(addr uint64) { dram.Write(addr) }
	seg := core.SegmentConfig{
		Name: "L2-setpart", SizeBytes: 1 << 20, Ways: 16, BlockBytes: 64,
	}
	sp, err := core.NewSetPartition(seg, userSets, wb)
	if err != nil {
		return nil, err
	}
	hier, err := mem.NewHierarchy(mem.DefaultL1I(), mem.DefaultL1D(), sp, dram)
	if err != nil {
		return nil, err
	}
	c, err := cpu.New(cpu.DefaultConfig(), hier)
	if err != nil {
		return nil, err
	}
	return &sim.Machine{CPU: c, Hier: hier, L2: sp, DRAM: dram}, nil
}

// buildWayPartMachine assembles a machine whose 1MB L2 is statically
// way-partitioned (userWays for user, rest kernel) using the dynamic
// design's machinery with the controller effectively frozen.
func buildWayPartMachine(userWays int) (*sim.Machine, error) {
	dram := mem.NewDRAM(mem.DefaultDRAMConfig())
	wb := func(addr uint64) { dram.Write(addr) }
	seg := core.SegmentConfig{
		Name: "L2-waypart", SizeBytes: 1 << 20, Ways: 16, BlockBytes: 64,
	}
	dc := core.DefaultDynamicConfig(seg)
	// Freeze: epochs far beyond any run length keep the initial split.
	dc.EpochAccesses = 1 << 62
	dp, err := core.NewDynamicPartition(dc, wb)
	if err != nil {
		return nil, err
	}
	dp.ForceAllocation(userWays, seg.Ways-userWays)
	hier, err := mem.NewHierarchy(mem.DefaultL1I(), mem.DefaultL1D(), dp, dram)
	if err != nil {
		return nil, err
	}
	c, err := cpu.New(cpu.DefaultConfig(), hier)
	if err != nil {
		return nil, err
	}
	return &sim.Machine{CPU: c, Hier: hier, L2: dp, DRAM: dram, Dynamic: dp}, nil
}

// runE20 compares the isolation mechanisms on a representative app.
func runE20(opts Options) (Result, error) {
	var res Result
	app := opts.Apps[0]

	runOn := func(m *sim.Machine) (sim.RunReport, error) {
		gen, err := workload.NewGenerator(app, appSeed(opts.Seed, 0), uint64(opts.Accesses/maxInt(app.Phases, 1)))
		if err != nil {
			return sim.RunReport{}, err
		}
		return sim.RunTrace(m, app.Name, trace.NewLimitSource(gen, opts.Accesses), 0), nil
	}

	type row struct {
		name     string
		capacity string
		rep      sim.RunReport
	}
	var rows []row

	baseCfg, err := sim.MachineByName("baseline-sram")
	if err != nil {
		return res, err
	}
	base, err := runWorkload(opts, baseCfg, app, appSeed(opts.Seed, 0))
	if err != nil {
		return res, err
	}
	rows = append(rows, row{"shared (baseline)", "1MB", base})

	spCfg, err := sim.MachineByName("sp")
	if err != nil {
		return res, err
	}
	spRep, err := runWorkload(opts, spCfg, app, appSeed(opts.Seed, 0))
	if err != nil {
		return res, err
	}
	rows = append(rows, row{"segments (paper SP)", "512KB+256KB", spRep})

	setM, err := buildSetPartMachine(640) // 640:384 of 1024 sets ~ 2:1
	if err != nil {
		return res, err
	}
	setRep, err := runOn(setM)
	if err != nil {
		return res, err
	}
	rows = append(rows, row{"set partition (coloring)", "640KB+384KB of 1MB", setRep})

	wayM, err := buildWayPartMachine(10) // 10:6 of 16 ways ~ 2:1
	if err != nil {
		return res, err
	}
	wayRep, err := runOn(wayM)
	if err != nil {
		return res, err
	}
	rows = append(rows, row{"way partition (frozen)", "10+6 of 16 ways", wayRep})

	tb := report.NewTable(fmt.Sprintf("E20: isolation mechanisms on %s (all SRAM)", app.Name),
		"mechanism", "capacity", "missrate", "interference", "IPC", "L2 energy")
	for _, r := range rows {
		tb.AddRow(r.name, r.capacity,
			report.Pct(r.rep.L2.MissRate()),
			fmt.Sprint(r.rep.L2.InterferenceEvictions),
			fmt.Sprintf("%.4f", r.rep.IPC()),
			report.Joules(r.rep.L2EnergyJ()))
	}
	res.Tables = append(res.Tables, tb)
	res.addValue("missrate_shared", base.L2.MissRate())
	res.addValue("missrate_segments", spRep.L2.MissRate())
	res.addValue("missrate_setpart", setRep.L2.MissRate())
	res.addValue("missrate_waypart", wayRep.L2.MissRate())
	res.addValue("interference_setpart", float64(setRep.L2.InterferenceEvictions))
	res.addValue("energy_segments", spRep.L2EnergyJ())
	res.addValue("energy_setpart", setRep.L2EnergyJ())
	res.addNote("all three mechanisms eliminate (or nearly eliminate) cross-domain evictions; only the segment design shrinks installed capacity, which is why the paper builds on it")
	return res, nil
}
