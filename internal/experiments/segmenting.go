package experiments

import (
	"context"

	"mobilecache/internal/engine"
	"mobilecache/internal/sim"
)

// ValidateSegmented compares segmented against serial replay on the
// standard validation grid: every standard machine × the option's apps
// × two seed bases, at the option's trace length. Two seed bases
// matter here for the same reason they do in ValidateSample — the
// adaptive schemes' epoch-boundary repartition decisions are
// phase-shifted at segment boundaries, and aggregating two independent
// trace realisations averages that estimator variance down. With
// seg.Warmup < 0 the grid doubles as the stitching equivalence gate:
// every integer counter must match serially, so any miss-rate error is
// a bug, not an approximation. EXPERIMENTS.md documents the audit
// methodology and the measured error table.
func ValidateSegmented(opts Options, seg sim.SegmentPlan, tol float64) (engine.SegmentValidation, error) {
	if err := opts.Validate(); err != nil {
		return engine.SegmentValidation{}, err
	}
	var cells []engine.Cell
	for _, cfg := range sim.StandardMachines() {
		for i, app := range opts.Apps {
			for _, base := range []uint64{opts.Seed, opts.Seed + 1} {
				cells = append(cells, engine.Cell{
					Machine: cfg.Name, Config: cfg, App: app.Name, Profile: app,
					Seed: appSeed(base, i),
				})
			}
		}
	}
	plan := engine.Plan{Cells: cells, Accesses: opts.Accesses}
	return opts.eng().ValidateSegmented(context.Background(), plan, seg, tol)
}
