// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md for the per-experiment index). Each
// BenchmarkE*/BenchmarkT* target runs one experiment end to end and
// reports its headline values as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation, and
//
//	go test -bench=BenchmarkE7 -benchmem
//
// regenerates a single figure. The micro-benchmarks at the bottom
// measure the simulator's own throughput.
package mobilecache

import (
	"fmt"
	"testing"

	"mobilecache/internal/cache"
	"mobilecache/internal/config"
	"mobilecache/internal/experiments"
	"mobilecache/internal/sim"
	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

// benchOptions scales the experiments for benchmarking: all ten apps,
// moderate trace length per app so a full -bench=. sweep stays in the
// minutes range. cmd/mcbench runs the same experiments at full scale.
func benchOptions() experiments.Options {
	return experiments.Options{Accesses: 120_000, Seed: 1, Apps: workload.Profiles()}
}

// runExperiment executes one experiment per iteration and publishes its
// headline values as metrics.
func runExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run(id, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		v, ok := res.Values[m]
		if !ok {
			b.Fatalf("experiment %s has no value %q", id, m)
		}
		b.ReportMetric(v, m)
	}
}

// BenchmarkE1KernelShare regenerates the motivation figure: the kernel
// share of L2 accesses per app (paper: >40% on average).
func BenchmarkE1KernelShare(b *testing.B) {
	runExperiment(b, "E1", "avg_l2_kernel_share")
}

// BenchmarkE2Interference regenerates the user/kernel interference
// comparison between the shared L2 and same-capacity isolation.
func BenchmarkE2Interference(b *testing.B) {
	runExperiment(b, "E2", "avg_interference_per_1k")
}

// BenchmarkE3SizingSweep regenerates the miss-rate-vs-segment-size
// curves and the static partition sizing decision.
func BenchmarkE3SizingSweep(b *testing.B) {
	runExperiment(b, "E3", "shrink_fraction", "baseline_missrate", "partition_missrate")
}

// BenchmarkE4Lifetime regenerates the per-segment block lifetime and
// write-interval distributions motivating multi-retention STT-RAM.
func BenchmarkE4Lifetime(b *testing.B) {
	runExperiment(b, "E4", "kernel_mean_lifetime", "user_mean_lifetime", "kernel_life_below_ms_ret")
}

// BenchmarkE5TechTable regenerates the technology parameter table.
func BenchmarkE5TechTable(b *testing.B) {
	runExperiment(b, "E5", "leakage_ratio_sram_over_stt")
}

// BenchmarkE6EnergyBreakdown regenerates the per-scheme L2 energy
// breakdown (read/write/leakage/refresh).
func BenchmarkE6EnergyBreakdown(b *testing.B) {
	runExperiment(b, "E6", "leakfrac_baseline-sram", "total_baseline-sram", "total_dp-sr")
}

// BenchmarkE7NormalizedEnergy regenerates the headline figure:
// normalized L2 energy for every app and scheme (paper: static ~75%
// saving, dynamic ~85%).
func BenchmarkE7NormalizedEnergy(b *testing.B) {
	runExperiment(b, "E7", "saving_sp", "saving_sp-mr", "saving_dp", "saving_dp-sr")
}

// BenchmarkE8Performance regenerates the performance companion figure
// (paper: ~2% loss static, ~3% dynamic).
func BenchmarkE8Performance(b *testing.B) {
	runExperiment(b, "E8", "perf_loss_sp-mr", "perf_loss_dp-sr")
}

// BenchmarkE9Adaptation regenerates the dynamic-partition adaptation
// trajectory over a multi-app session.
func BenchmarkE9Adaptation(b *testing.B) {
	runExperiment(b, "E9", "epochs", "distinct_allocations", "gated_epoch_fraction")
}

// BenchmarkE10RetentionSweep regenerates the kernel-segment retention
// sensitivity sweep.
func BenchmarkE10RetentionSweep(b *testing.B) {
	runExperiment(b, "E10", "best_retention_s")
}

// BenchmarkE11RefreshPolicy regenerates the refresh policy ablation.
func BenchmarkE11RefreshPolicy(b *testing.B) {
	runExperiment(b, "E11",
		"kernel_energy_periodic-all", "kernel_energy_dirty-only", "kernel_energy_eager-writeback")
}

// BenchmarkE12ControllerAblation regenerates the dynamic controller
// epoch/slack ablation.
func BenchmarkE12ControllerAblation(b *testing.B) {
	runExperiment(b, "E12", "best_norm_energy", "worst_norm_energy")
}

// BenchmarkE13PolicyAblation regenerates the replacement-policy
// sensitivity study.
func BenchmarkE13PolicyAblation(b *testing.B) {
	runExperiment(b, "E13", "baseline_missrate_lru", "baseline_missrate_random")
}

// BenchmarkE14SizeSweep regenerates the baseline L2 size sweep.
func BenchmarkE14SizeSweep(b *testing.B) {
	runExperiment(b, "E14", "energy_256k", "energy_2048k")
}

// BenchmarkE15IdleSensitivity regenerates the idle-time sensitivity of
// the energy savings.
func BenchmarkE15IdleSensitivity(b *testing.B) {
	runExperiment(b, "E15", "spmr_saving_active", "spmr_saving_idlest")
}

// BenchmarkE16DRAMModel regenerates the DRAM-abstraction robustness
// check (flat vs open-page row buffers).
func BenchmarkE16DRAMModel(b *testing.B) {
	runExperiment(b, "E16", "flat_saving_sp-mr", "openpage_saving_sp-mr")
}

// BenchmarkE17Prefetch regenerates the L1-prefetcher robustness check.
func BenchmarkE17Prefetch(b *testing.B) {
	runExperiment(b, "E17", "nopf_saving_sp-mr", "pf_saving_sp-mr", "base_ipc_gain_from_pf")
}

// BenchmarkE18Drowsy regenerates the drowsy-SRAM comparison.
func BenchmarkE18Drowsy(b *testing.B) {
	runExperiment(b, "E18", "norm_energy_baseline-drowsy", "norm_energy_sp-mr", "norm_energy_dp-sr")
}

// BenchmarkE19Validation regenerates the workload reuse fingerprints.
func BenchmarkE19Validation(b *testing.B) {
	runExperiment(b, "E19", "avg_user_footprint", "avg_kernel_footprint")
}

// BenchmarkE20Mechanisms regenerates the partitioning-mechanism
// comparison (segments vs page coloring vs way partitioning).
func BenchmarkE20Mechanisms(b *testing.B) {
	runExperiment(b, "E20", "missrate_shared", "missrate_segments", "missrate_setpart")
}

// BenchmarkE21RetentionFaults regenerates the retention-fault
// sensitivity sweep of the STT-RAM designs.
func BenchmarkE21RetentionFaults(b *testing.B) {
	runExperiment(b, "E21", "energy_overhead_pct_sp-mr", "energy_overhead_pct_dp-sr", "fault_expiries_dp-sr_ber1e-03")
}

// BenchmarkT1SystemConfig regenerates the platform configuration table.
func BenchmarkT1SystemConfig(b *testing.B) {
	runExperiment(b, "T1", "schemes")
}

// BenchmarkT2Summary regenerates the summary table with the paper's
// headline comparisons.
func BenchmarkT2Summary(b *testing.B) {
	runExperiment(b, "T2", "saving_sp-mr", "perf_loss_sp-mr", "saving_dp-sr", "perf_loss_dp-sr")
}

// BenchmarkT3SeedRobustness regenerates the multi-seed stability check
// of the headline comparison.
func BenchmarkT3SeedRobustness(b *testing.B) {
	runExperiment(b, "T3", "saving_mean_sp-mr", "saving_stddev_sp-mr", "saving_mean_dp-sr")
}

// --- simulator micro-benchmarks ---

// BenchmarkCacheAccess measures raw set-associative cache throughput.
func BenchmarkCacheAccess(b *testing.B) {
	c, err := cache.New(cache.Config{Name: "bench", SizeBytes: 1 << 20, Ways: 16, BlockBytes: 64, Policy: cache.LRU})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i) * 2654435761 % (4 << 20)
		c.Access(addr, i%4 == 0, trace.User, uint64(i))
	}
}

// BenchmarkShadowTags measures the utility monitor's overhead.
func BenchmarkShadowTags(b *testing.B) {
	st := cache.NewShadowTags(1024, 16, 64, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Access(uint64(i) * 2654435761 % (4 << 20))
	}
}

// BenchmarkTraceGeneration measures synthetic workload generation.
func BenchmarkTraceGeneration(b *testing.B) {
	prof := workload.Profiles()[0]
	gen, err := workload.NewGenerator(prof, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next()
	}
}

// BenchmarkFullSimulation measures end-to-end simulated accesses per
// second on the baseline machine.
func BenchmarkFullSimulation(b *testing.B) {
	for _, scheme := range []string{"baseline-sram", "sp-mr", "dp-sr"} {
		b.Run(scheme, func(b *testing.B) {
			cfg, err := sim.MachineByName(scheme)
			if err != nil {
				b.Fatal(err)
			}
			m, err := sim.Build(cfg)
			if err != nil {
				b.Fatal(err)
			}
			gen, err := workload.NewGenerator(workload.Profiles()[0], 1, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			sim.RunTrace(m, "bench", trace.NewLimitSource(gen, b.N), 0)
		})
	}
}

// BenchmarkMachineBuild measures machine construction cost.
func BenchmarkMachineBuild(b *testing.B) {
	cfg := config.Default()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Build(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Example of reading a headline metric programmatically.
func ExampleRunExperiment() {
	res, err := RunExperiment("E5", ExperimentOptions{
		Accesses: 1000, Seed: 1, Apps: Profiles()[:1],
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.ID, "tables:", len(res.Tables) > 0)
	// Output: E5 tables: true
}
