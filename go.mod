module mobilecache

go 1.22
