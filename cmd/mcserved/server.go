package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"

	"mobilecache/internal/jobs"
)

// failureTailLen is how many trailing failure events a status response
// carries — enough for triage without shipping a million-line manifest.
const failureTailLen = 10

// server is the HTTP face of a jobs.Manager.
type server struct {
	m   *jobs.Manager
	mux *http.ServeMux
}

func newServer(m *jobs.Manager) http.Handler {
	s := &server{m: m, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.submit)
	s.mux.HandleFunc("POST /jobs/{$}", s.submit)
	s.mux.HandleFunc("GET /jobs", s.list)
	s.mux.HandleFunc("GET /jobs/{$}", s.list)
	s.mux.HandleFunc("GET /jobs/{id}", s.status)
	s.mux.HandleFunc("GET /jobs/{id}/results", s.results)
	s.mux.HandleFunc("GET /jobs/{id}/csv", s.csv)
	s.mux.HandleFunc("POST /jobs/{id}/cancel", s.cancel)
	s.mux.HandleFunc("GET /healthz", s.healthz)
	s.mux.HandleFunc("GET /readyz", s.readyz)
	s.mux.HandleFunc("GET /metrics", s.metrics)
	return s.mux
}

// clientID identifies the submitter for per-client admission limits:
// an explicit X-Client-ID header, else the peer address without port.
func clientID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get("X-Client-ID")); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// fail maps manager sentinels onto HTTP status codes and writes a JSON
// error body. Overload answers carry Retry-After so well-behaved
// clients back off instead of hammering.
func fail(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, jobs.ErrNotFinished):
		code = http.StatusConflict
	case errors.Is(err, jobs.ErrTooLarge):
		code = http.StatusRequestEntityTooLarge
	case errors.Is(err, jobs.ErrOverloaded), errors.Is(err, jobs.ErrClientLimit):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "5")
	case errors.Is(err, jobs.ErrDraining):
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "30")
	case errors.Is(err, jobs.ErrDegraded):
		// Storage cannot make submissions durable; the probe reopens
		// admission once writes succeed again, so a short retry is right.
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "10")
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	spec, err := jobs.DecodeSpec(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		fail(w, err)
		return
	}
	j, err := s.m.Submit(spec, clientID(r))
	if err != nil {
		fail(w, err)
		return
	}
	st := j.Status()
	w.Header().Set("Location", "/jobs/"+j.ID())
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":      j.ID(),
		"cells":   st.Total,
		"state":   st.State,
		"results": "/jobs/" + j.ID() + "/results",
		"csv":     "/jobs/" + j.ID() + "/csv",
	})
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.List())
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	j, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job":      j.Status(),
		"failures": j.FailureTail(failureTailLen),
	})
}

// results streams the job's events. Default framing is JSONL — one
// event object per line, ending with a "done" summary; with
// Accept: text/event-stream the same events go out as SSE data
// records. Either way the connection stays open until the job is
// terminal or the client goes away.
func (s *server) results(w http.ResponseWriter, r *http.Request) {
	j, err := s.m.Get(r.PathValue("id"))
	if err != nil {
		fail(w, err)
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/jsonl")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	streamErr := j.Stream(r.Context(), func(ev jobs.Event) error {
		data, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if sse {
			if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(w, "%s\n", data); err != nil {
				return err
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	// The stream either completed (nil: "done" event delivered) or the
	// client/context went away mid-stream — the response is already
	// committed, nothing more to write.
	_ = streamErr
}

func (s *server) csv(w http.ResponseWriter, r *http.Request) {
	f, err := s.m.ResultCSV(r.PathValue("id"))
	if err != nil {
		fail(w, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%q", r.PathValue("id")+".csv"))
	io.Copy(w, f)
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	if err := s.m.Cancel(r.PathValue("id")); err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "cancelling"})
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// readyz flips to 503 once draining starts — or while the store is
// degraded by I/O errors — so load balancers stop routing new work
// while in-flight cells finish (or storage recovers).
func (s *server) readyz(w http.ResponseWriter, r *http.Request) {
	if s.m.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	if s.m.Degraded() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "degraded\n")
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n")
}

// metrics renders the manager counters as Prometheus text exposition.
func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	st := s.m.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	gauge("mcserved_uptime_seconds", "Seconds since the daemon started.", st.Uptime.Seconds())
	counter("mcserved_cells_done_total", "Cells completed successfully (resumed replays included).", st.CellsDone)
	counter("mcserved_cells_failed_total", "Cells that exhausted their attempts.", st.CellsFailed)
	counter("mcserved_cells_resumed_total", "Cells replayed from checkpoint journals instead of re-simulated.", st.CellsResumed)
	counter("mcserved_jobs_recovered_total", "Interrupted jobs resumed at startup.", st.JobsRecovered)
	counter("mcserved_io_errors_total", "Persistence-path I/O faults absorbed (ENOSPC, EIO, crash).", st.IOErrors)
	counter("mcserved_resume_after_fault_total", "Executions that recovered from a torn checkpoint tail.", st.ResumeAfterFault)
	degraded := 0.0
	if st.Degraded {
		degraded = 1
	}
	gauge("mcserved_degraded", "1 while I/O errors have paused admission, else 0.", degraded)
	rate := 0.0
	if s := st.Uptime.Seconds(); s > 0 {
		rate = float64(st.CellsDone) / s
	}
	gauge("mcserved_cells_per_second", "Completed cells per second of uptime.", rate)
	gauge("mcserved_jobs_active", "Non-terminal jobs held by the daemon.", float64(st.ActiveJobs))
	fmt.Fprintf(&b, "# HELP mcserved_jobs Jobs by lifecycle state.\n# TYPE mcserved_jobs gauge\n")
	for _, state := range []jobs.State{
		jobs.StatePending, jobs.StateRunning, jobs.StateDraining,
		jobs.StateDone, jobs.StateFailed, jobs.StateCancelled,
	} {
		fmt.Fprintf(&b, "mcserved_jobs{state=%q} %d\n", state, st.ByState[state])
	}
	gauge("mcserved_cells_inflight", "Cells currently executing.", float64(st.InFlight))
	gauge("mcserved_queue_depth", "Cells waiting for a worker slot.", float64(st.Waiting))
	gauge("mcserved_worker_slots", "Worker slots shared by all jobs.", float64(st.Slots))
	counter("mcserved_memo_hits_total", "Run-memo hits.", st.Memo.Hits)
	counter("mcserved_memo_misses_total", "Run-memo misses.", st.Memo.Misses)
	counter("mcserved_memo_evictions_total", "Run-memo evictions.", st.Memo.Evictions)
	counter("mcserved_memo_duplicates_total", "Run-memo adds that found the key already cached.", st.Memo.Duplicates)
	gauge("mcserved_memo_entries", "Run-memo resident entries.", float64(st.Memo.Entries))
	gauge("mcserved_memo_shards", "Run-memo lock stripes.", float64(st.Memo.Shards))
	gauge("mcserved_memo_shard_entries_max", "Entries in the fullest run-memo shard (skew vs min).", float64(st.Memo.MaxShardEntries))
	gauge("mcserved_memo_shard_entries_min", "Entries in the emptiest run-memo shard (skew vs max).", float64(st.Memo.MinShardEntries))
	counter("mcserved_trace_hits_total", "Trace-arena hits.", st.Store.Hits)
	counter("mcserved_trace_misses_total", "Trace-arena misses.", st.Store.Misses)
	counter("mcserved_trace_generated_total", "Traces generated.", st.Store.Generated)
	counter("mcserved_trace_evictions_total", "Trace-arena evictions.", st.Store.Evictions)
	counter("mcserved_trace_demotions_total", "Hot traces demoted to packed-only residency.", st.Store.Demotions)
	gauge("mcserved_trace_bytes_in_use", "Trace-arena resident bytes.", float64(st.Store.BytesInUse))
	gauge("mcserved_trace_entries", "Trace-arena resident traces.", float64(st.Store.Entries))
	gauge("mcserved_trace_shards", "Trace-arena lock stripes.", float64(st.Store.Shards))
	gauge("mcserved_trace_shard_entries_max", "Traces in the fullest arena shard (skew vs min).", float64(st.Store.MaxShardEntries))
	gauge("mcserved_trace_shard_entries_min", "Traces in the emptiest arena shard (skew vs max).", float64(st.Store.MinShardEntries))

	io.WriteString(w, b.String())
}
