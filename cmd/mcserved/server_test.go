package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mobilecache/internal/jobs"
)

func newTestServer(t *testing.T, opts jobs.Options) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	if opts.Root == "" {
		opts.Root = t.TempDir()
	}
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	opts.KeepGoing = true
	m, err := jobs.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(m))
	t.Cleanup(ts.Close)
	return ts, m
}

const tinySpec = `{"machines": ["baseline-sram"], "apps": ["browser"], "seeds": [1, 2], "accesses": 2000}`

// longSpec runs long enough for tests to observe it mid-flight.
const longSpec = `{"machines": ["baseline-sram", "sp-mr"], "apps": ["browser", "social"], "seeds": [1, 2, 3, 4, 5, 6, 7, 8], "accesses": 400000}`

func postJob(t *testing.T, ts *httptest.Server, spec, client string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/jobs", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if client != "" {
		req.Header.Set("X-Client-ID", client)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response body: %v", err)
	}
	return v
}

func submitOK(t *testing.T, ts *httptest.Server, spec, client string) string {
	t.Helper()
	resp := postJob(t, ts, spec, client)
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit = %d, want 202; body %s", resp.StatusCode, body)
	}
	id, _ := decodeBody(t, resp)["id"].(string)
	if id == "" {
		t.Fatal("submit response missing id")
	}
	return id
}

func jobState(t *testing.T, ts *httptest.Server, id string) (state string, body map[string]any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	body = decodeBody(t, resp)
	job, _ := body["job"].(map[string]any)
	state, _ = job["state"].(string)
	return state, body
}

func waitState(t *testing.T, ts *httptest.Server, id, want string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if state, _ := jobState(t, ts, id); state == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	state, _ := jobState(t, ts, id)
	t.Fatalf("job %s stuck in %q, want %q", id, state, want)
}

// The happy path end to end: submit, watch the JSONL stream deliver
// every cell plus the done summary, download the CSV.
func TestSubmitStreamDownload(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{})
	id := submitOK(t, ts, tinySpec, "alice")

	resp, err := ts.Client().Get(ts.URL + "/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/jsonl" {
		t.Fatalf("results Content-Type = %q", ct)
	}
	cells := 0
	var done jobs.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		switch ev.Type {
		case "cell":
			cells++
			if ev.Machine == "" || ev.IPC <= 0 {
				t.Fatalf("cell event missing fields: %+v", ev)
			}
		case "done":
			done = ev
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if cells != 2 || done.Type != "done" || done.State != jobs.StateDone || done.Completed != 2 {
		t.Fatalf("stream saw %d cells, done=%+v", cells, done)
	}

	csvResp, err := ts.Client().Get(ts.URL + "/jobs/" + id + "/csv")
	if err != nil {
		t.Fatal(err)
	}
	defer csvResp.Body.Close()
	if csvResp.StatusCode != http.StatusOK || csvResp.Header.Get("Content-Type") != "text/csv" {
		t.Fatalf("csv = %d %q", csvResp.StatusCode, csvResp.Header.Get("Content-Type"))
	}
	data, _ := io.ReadAll(csvResp.Body)
	lines := bytes.Count(data, []byte("\n"))
	if !bytes.HasPrefix(data, []byte("machine,")) || lines != 3 {
		t.Fatalf("csv has %d lines, starts %q; want header + 2 cells", lines, data[:min(len(data), 40)])
	}
}

// SSE framing when the client asks for it.
func TestResultsSSE(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{})
	id := submitOK(t, ts, tinySpec, "")
	req, _ := http.NewRequest("GET", ts.URL+"/jobs/"+id+"/results", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(body, []byte("event: cell\ndata: ")) ||
		!bytes.Contains(body, []byte("event: done\ndata: ")) {
		t.Fatalf("SSE stream missing framed events:\n%s", body)
	}
}

// Admission answers: full queue and client bound are 429 with
// Retry-After, an oversized grid is 413, garbage is 400.
func TestAdmissionStatusCodes(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{
		Workers: 1, MaxJobs: 1, MaxClientJobs: 1, MaxCellsPerJob: 64,
	})
	id := submitOK(t, ts, longSpec, "alice")
	defer func() {
		ts.Client().Post(ts.URL+"/jobs/"+id+"/cancel", "", nil)
		waitState(t, ts, id, "cancelled")
	}()

	resp := postJob(t, ts, tinySpec, "bob")
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("overload: %d Retry-After=%q, want 429 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()

	big := `{"machines": ["baseline-sram"], "apps": ["browser"], "seeds": [` + seedList(100) + `], "accesses": 1000}`
	resp = postJob(t, ts, big, "carol")
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized grid = %d, want 413", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJob(t, ts, `{"machines": ["no-such-machine"]}`, "dave")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec = %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

func seedList(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", i+1)
	}
	return b.String()
}

// The per-client bound only throttles the offending client.
func TestClientLimit(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{Workers: 1, MaxClientJobs: 1})
	id := submitOK(t, ts, longSpec, "alice")
	defer func() {
		ts.Client().Post(ts.URL+"/jobs/"+id+"/cancel", "", nil)
		waitState(t, ts, id, "cancelled")
	}()

	resp := postJob(t, ts, tinySpec, "alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("same client second job = %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()

	other := submitOK(t, ts, tinySpec, "bob")
	waitState(t, ts, other, "done")
}

func TestCancelAndConflict(t *testing.T) {
	ts, _ := newTestServer(t, jobs.Options{Workers: 1})
	id := submitOK(t, ts, longSpec, "")

	resp, err := ts.Client().Post(ts.URL+"/jobs/"+id+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d, want 200", resp.StatusCode)
	}
	waitState(t, ts, id, "cancelled")

	csvResp, err := ts.Client().Get(ts.URL + "/jobs/" + id + "/csv")
	if err != nil {
		t.Fatal(err)
	}
	csvResp.Body.Close()
	if csvResp.StatusCode != http.StatusConflict {
		t.Fatalf("csv of cancelled job = %d, want 409", csvResp.StatusCode)
	}

	missing, err := ts.Client().Get(ts.URL + "/jobs/feedfacedeadbeef00000000")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", missing.StatusCode)
	}
}

func TestHealthReadyMetrics(t *testing.T) {
	ts, m := newTestServer(t, jobs.Options{})
	id := submitOK(t, ts, tinySpec, "")
	waitState(t, ts, id, "done")

	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"mcserved_cells_done_total 2",
		`mcserved_jobs{state="done"} 1`,
		"mcserved_queue_depth",
		"mcserved_cells_per_second",
		"mcserved_memo_hits_total",
		"mcserved_memo_duplicates_total",
		"mcserved_memo_shards",
		"mcserved_memo_shard_entries_max",
		"mcserved_trace_bytes_in_use",
		"mcserved_trace_demotions_total",
		"mcserved_trace_shards",
		"mcserved_trace_shard_entries_min",
		"mcserved_jobs_recovered_total 0",
	} {
		if !bytes.Contains(body, []byte(metric)) {
			t.Fatalf("/metrics missing %q:\n%s", metric, body)
		}
	}

	// Draining flips readiness but not liveness.
	if err := m.Shutdown(ctxWithTimeout(t)); err != nil {
		t.Fatal(err)
	}
	ready, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining = %d, want 503", ready.StatusCode)
	}
	live, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	live.Body.Close()
	if live.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining = %d, want 200", live.StatusCode)
	}
	drained := postJob(t, ts, tinySpec, "")
	if drained.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", drained.StatusCode)
	}
	drained.Body.Close()
}

// Flag validation fails fast with a clear message and exit code 2.
func TestRunFlagValidation(t *testing.T) {
	for _, bad := range [][]string{
		{"-workers", "-1"},
		{"-max-jobs", "0"},
		{"-timeout", "-1s"},
		{"-audit", "bogus"},
		{"-drain-timeout", "0s"},
		{"-data", ""},
	} {
		var out, errOut bytes.Buffer
		if code := run(bad, &out, &errOut); code != 2 {
			t.Fatalf("run(%v) = %d, want 2 (stderr %q)", bad, code, errOut.String())
		}
		if errOut.Len() == 0 {
			t.Fatalf("run(%v) produced no diagnostic", bad)
		}
	}
}

func ctxWithTimeout(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}
