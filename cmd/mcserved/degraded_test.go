package main

import (
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"mobilecache/internal/faultfs"
	"mobilecache/internal/jobs"
)

// toggleFault fails every durable write with ENOSPC while on.
type toggleFault struct{ on atomic.Bool }

func (f *toggleFault) Fault(op faultfs.Op) *faultfs.Fault {
	if !f.on.Load() {
		return nil
	}
	switch op.Kind {
	case faultfs.OpWrite, faultfs.OpSync, faultfs.OpCreate, faultfs.OpDirSync:
		return &faultfs.Fault{Err: syscall.ENOSPC}
	}
	return nil
}

// TestDegradedEndpoints drives the HTTP surface through a full
// degraded episode: submissions shed with 503 + Retry-After, /readyz
// reports degraded, /metrics exposes the counters and gauge, and after
// the store recovers everything returns to ready.
func TestDegradedEndpoints(t *testing.T) {
	fault := &toggleFault{}
	ts, m := newTestServer(t, jobs.Options{
		FS:            faultfs.New(fault),
		ProbeInterval: 10 * time.Millisecond,
	})

	fault.on.Store(true)
	// The failing submission itself reports the I/O error.
	resp := postJob(t, ts, tinySpec, "c")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError && resp.StatusCode != http.StatusBadRequest {
		t.Logf("first faulted submit: %d", resp.StatusCode)
	}
	if !m.Degraded() {
		t.Fatal("manager not degraded after faulted submission")
	}

	// Now degraded: submissions shed immediately.
	resp = postJob(t, ts, tinySpec, "c")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while degraded: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}

	get := func(path string) (int, string) {
		r, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		body, _ := io.ReadAll(r.Body)
		return r.StatusCode, string(body)
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Fatalf("/readyz while degraded: %d %q", code, body)
	}
	_, metrics := get("/metrics")
	if !strings.Contains(metrics, "mcserved_degraded 1") {
		t.Fatalf("metrics missing degraded gauge:\n%s", metrics)
	}
	if !strings.Contains(metrics, "mcserved_io_errors_total") ||
		strings.Contains(metrics, "mcserved_io_errors_total 0\n") {
		t.Fatalf("metrics missing io_errors_total count:\n%s", metrics)
	}
	if !strings.Contains(metrics, "mcserved_resume_after_fault_total") {
		t.Fatalf("metrics missing resume_after_fault_total:\n%s", metrics)
	}

	// Recovery: the probe reopens admission and /readyz returns 200.
	fault.on.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for m.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("daemon never recovered after the fault cleared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz after recovery: %d %q", code, body)
	}
	if _, metrics := get("/metrics"); !strings.Contains(metrics, "mcserved_degraded 0") {
		t.Fatalf("degraded gauge did not clear:\n%s", metrics)
	}
	id := submitOK(t, ts, tinySpec, "c")
	waitState(t, ts, id, "done")
}
