// Command mcserved serves the sweep engine over HTTP: clients POST a
// sweep spec (the mcsweep JSON format), get a job id back, stream
// per-cell results as JSONL or SSE, download the final CSV, and
// cancel. Every job is crash-resumable: completed cells land in a
// per-job checkpoint journal, and a restarted daemon resumes every
// interrupted job from the journal's longest valid prefix.
//
// Endpoints:
//
//	POST /jobs               submit a spec          → 202 {"id": ...}
//	GET  /jobs               list jobs              → 200 JSON array
//	GET  /jobs/{id}          status + failure tail  → 200 JSON
//	GET  /jobs/{id}/results  stream events          → JSONL (SSE with
//	                         Accept: text/event-stream)
//	GET  /jobs/{id}/csv      final CSV              → 200 text/csv
//	POST /jobs/{id}/cancel   cancel                 → 200
//	GET  /healthz            liveness               → 200
//	GET  /readyz             readiness              → 200, 503 draining
//	GET  /metrics            Prometheus-style text  → 200
//
// SIGINT/SIGTERM closes admission, drains in-flight cells up to
// -drain-timeout, fsyncs every journal, and exits; whatever the
// deadline cut off resumes on the next start.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mobilecache/internal/engine"
	"mobilecache/internal/faultfs"
	"mobilecache/internal/jobs"
)

type options struct {
	addr          string
	data          string
	workers       int
	maxJobs       int
	maxClientJobs int
	maxCells      int
	timeout       time.Duration
	retries       int
	keepGoing     bool
	audit         string
	traceCacheMB  int
	drainTimeout  time.Duration
	probeInterval time.Duration
}

func (o *options) register(fs *flag.FlagSet) {
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8347", "listen address")
	fs.StringVar(&o.data, "data", "mcserved-data", "job store directory (journals, manifests, results)")
	fs.IntVar(&o.workers, "workers", 0, "worker slots shared by all jobs (0 = GOMAXPROCS)")
	fs.IntVar(&o.maxJobs, "max-jobs", jobs.DefaultMaxJobs, "admission bound: concurrent non-terminal jobs")
	fs.IntVar(&o.maxClientJobs, "max-client-jobs", jobs.DefaultMaxClientJobs, "per-client concurrent job bound")
	fs.IntVar(&o.maxCells, "max-cells", jobs.DefaultMaxCellsPerJob, "per-job cell budget")
	fs.DurationVar(&o.timeout, "timeout", 0, "per-cell timeout (0 = none)")
	fs.IntVar(&o.retries, "retries", 0, "per-cell retries after the first attempt")
	fs.BoolVar(&o.keepGoing, "keep-going", true, "let sibling cells finish when a cell exhausts its attempts")
	fs.StringVar(&o.audit, "audit", "", "invariant audit mode for all simulations (off, sampled, full)")
	fs.IntVar(&o.traceCacheMB, "trace-cache-mb", 0, "trace arena budget in MiB (0 = engine default)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "graceful-shutdown drain deadline")
	fs.DurationVar(&o.probeInterval, "probe-interval", jobs.DefaultProbeInterval,
		"how often a degraded store is probed before reopening admission")
}

func (o *options) validate() error {
	if o.addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if o.data == "" {
		return fmt.Errorf("-data must not be empty")
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d)", o.workers)
	}
	if o.maxJobs <= 0 {
		return fmt.Errorf("-max-jobs must be positive (got %d)", o.maxJobs)
	}
	if o.maxClientJobs <= 0 {
		return fmt.Errorf("-max-client-jobs must be positive (got %d)", o.maxClientJobs)
	}
	if o.maxCells <= 0 {
		return fmt.Errorf("-max-cells must be positive (got %d)", o.maxCells)
	}
	if o.timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0 (got %v)", o.timeout)
	}
	if o.retries < 0 {
		return fmt.Errorf("-retries must be >= 0 (got %d)", o.retries)
	}
	if o.traceCacheMB < 0 {
		return fmt.Errorf("-trace-cache-mb must be >= 0 (got %d)", o.traceCacheMB)
	}
	if o.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive (got %v)", o.drainTimeout)
	}
	if o.probeInterval <= 0 {
		return fmt.Errorf("-probe-interval must be positive (got %v)", o.probeInterval)
	}
	if o.audit != "" {
		if err := engine.CheckAudit(o.audit); err != nil {
			return fmt.Errorf("-audit: %v", err)
		}
	}
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("mcserved", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var opt options
	opt.register(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := opt.validate(); err != nil {
		fmt.Fprintf(errOut, "mcserved: %v\n", err)
		return 2
	}
	if opt.audit != "" {
		restore, err := engine.ApplyAudit(opt.audit)
		if err != nil {
			fmt.Fprintf(errOut, "mcserved: -audit: %v\n", err)
			return 2
		}
		defer restore()
	}

	// MCSERVED_FAULT is a test hook: a faultfs plan spec (see
	// faultfs.ParsePlan) injected into the daemon's persistence path so
	// integration tests and the serve-smoke script can drive a real
	// degraded→recovered episode without filling a disk.
	var storeFS faultfs.FS
	if spec := os.Getenv("MCSERVED_FAULT"); spec != "" {
		plan, perr := faultfs.ParsePlan(spec)
		if perr != nil {
			fmt.Fprintf(errOut, "mcserved: MCSERVED_FAULT: %v\n", perr)
			return 2
		}
		fmt.Fprintf(errOut, "mcserved: MCSERVED_FAULT active: injecting %q into the store\n", spec)
		storeFS = faultfs.New(plan)
	}

	mgr, err := jobs.New(jobs.Options{
		Root:             opt.data,
		Workers:          opt.workers,
		MaxJobs:          opt.maxJobs,
		MaxClientJobs:    opt.maxClientJobs,
		MaxCellsPerJob:   opt.maxCells,
		Timeout:          opt.timeout,
		Retries:          opt.retries,
		KeepGoing:        opt.keepGoing,
		TraceBudgetBytes: int64(opt.traceCacheMB) << 20,
		Log:              errOut,
		FS:               storeFS,
		ProbeInterval:    opt.probeInterval,
	})
	if err != nil {
		fmt.Fprintf(errOut, "mcserved: %v\n", err)
		return 1
	}

	srv := &http.Server{
		Addr:    opt.addr,
		Handler: newServer(mgr),
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	workers := opt.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(out, "mcserved: listening on %s (store %s, %d worker slots)\n",
		opt.addr, opt.data, workers)

	select {
	case err := <-errCh:
		// The listener died before any signal: report and still drain the
		// manager so journals close cleanly.
		fmt.Fprintf(errOut, "mcserved: serve: %v\n", err)
		drainCtx, cancel := context.WithTimeout(context.Background(), opt.drainTimeout)
		defer cancel()
		mgr.Shutdown(drainCtx)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second signal kills immediately

	fmt.Fprintf(out, "mcserved: signal received, draining (deadline %v)\n", opt.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), opt.drainTimeout)
	defer cancel()
	// Stop accepting HTTP first so no new submissions race the drain,
	// then drain the manager.
	httpErr := srv.Shutdown(drainCtx)
	drainErr := mgr.Shutdown(drainCtx)
	switch {
	case drainErr != nil:
		fmt.Fprintf(errOut, "mcserved: drain deadline expired; interrupted jobs resume on next start: %v\n", drainErr)
		return 1
	case httpErr != nil && !errors.Is(httpErr, http.ErrServerClosed):
		fmt.Fprintf(errOut, "mcserved: http shutdown: %v\n", httpErr)
		return 1
	}
	fmt.Fprintln(out, "mcserved: drained cleanly")
	return 0
}
