package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, id := range []string{"E1", "E7", "E12", "T1", "T2"} {
		if !strings.Contains(s, id) {
			t.Errorf("list missing %s:\n%s", id, s)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-experiment", "E5", "-accesses", "5000", "-apps", "browser"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "E5:") || !strings.Contains(s, "stt-short") {
		t.Fatalf("E5 output wrong:\n%s", s)
	}
	if !strings.Contains(s, "finding:") {
		t.Fatalf("E5 output missing findings:\n%s", s)
	}
}

func TestAppSubset(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-experiment", "E1", "-accesses", "20000", "-apps", "music, video"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "music") || !strings.Contains(s, "video") {
		t.Fatalf("subset output wrong:\n%s", s)
	}
	if strings.Contains(s, "browser") {
		t.Fatalf("subset ran apps it should not have:\n%s", s)
	}
}

func TestCSVDump(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-experiment", "T1", "-accesses", "1000", "-apps", "game", "-csv", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "T1_*.csv"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no CSVs written: %v %v", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ",") {
		t.Fatal("CSV content wrong")
	}
}

func TestMarkdownDump(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-experiment", "T1", "-accesses", "1000", "-apps", "game", "-md", dir}, &out)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "T1_*.md"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no markdown written: %v %v", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "| --- |") {
		t.Fatal("markdown content wrong")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-experiment", "E99"},
		{"-apps", "nonexistent"},
		{"-experiment", "E5", "-accesses", "0"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// -sample runs experiments sampled; -sample-validate runs the
// sampled-vs-exact grid and reports PASS with a speedup line. Both are
// part of PR 5's sampling surface.
func TestSampleFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-experiment", "E5", "-accesses", "8000", "-apps", "browser", "-sample", "1/8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("sampled experiment produced no output")
	}
	for _, bad := range []string{"3", "1/0", "junk"} {
		if err := run([]string{"-experiment", "E5", "-sample", bad}, &out); err == nil {
			t.Errorf("-sample %q accepted", bad)
		}
	}
	// 20k accesses: below that, cold-start transients dominate the
	// energy estimate and the grid legitimately breaches the bound
	// (EXPERIMENTS.md documents the trace-length sensitivity).
	out.Reset()
	err = run([]string{"-sample-validate", "-accesses", "20000", "-apps", "browser,music", "-audit", "strict"}, &out)
	if err != nil {
		t.Fatalf("sample-validate failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"spec 1/8", "speedup", "PASS", "dp-sr"} {
		if !strings.Contains(s, want) {
			t.Errorf("sample-validate output missing %q:\n%s", want, s)
		}
	}
}
