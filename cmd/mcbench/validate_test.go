package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Bad settings and unwritable output destinations must be rejected
// before any experiment simulates — the error has to name the flag.
func TestFailFastValidation(t *testing.T) {
	// A regular file as a path component makes any dir under it
	// uncreatable, which (unlike permission bits) also holds for root.
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-accesses", "-5"}, "-accesses"},
		{[]string{"-accesses", "0"}, "-accesses"},
		{[]string{"-trace-cache-mb", "-1"}, "-trace-cache-mb"},
		{[]string{"-experiment", "E99"}, "-experiment"},
		{[]string{"-csv", filepath.Join(blocker, "sub")}, "-csv"},
		{[]string{"-md", filepath.Join(blocker, "sub")}, "-md"},
		{[]string{"-svg", filepath.Join(blocker, "sub")}, "-svg"},
	}
	for _, tc := range cases {
		var out bytes.Buffer
		err := run(tc.args, &out)
		if err == nil {
			t.Errorf("run(%v) succeeded, want fail-fast error", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) error %q does not name %q", tc.args, err, tc.want)
		}
	}
}

// A writable output dir passes the probe and is created if missing.
func TestOutputDirProbeCreates(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "csv")
	var out bytes.Buffer
	if err := run([]string{"-experiment", "E5", "-accesses", "4000", "-apps", "browser", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV landed in the probed directory")
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".probe-") {
			t.Fatalf("probe file %s left behind", e.Name())
		}
	}
}
