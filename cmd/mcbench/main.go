// mcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mcbench                      # run every experiment at full scale
//	mcbench -experiment E7       # one experiment
//	mcbench -accesses 100000 -apps browser,email   # smaller/narrower
//	mcbench -list                # list experiment IDs and titles
//	mcbench -csv dir/            # additionally dump each table as CSV
//
// Experiment IDs E1..E12 are the reconstructed figures, T1/T2 the
// tables; see DESIGN.md for the per-experiment index.
//
// Every experiment in a run is executed through one shared pipeline
// engine (internal/engine): its trace arena, bounded by
// -trace-cache-mb, replays cached packed traces for experiments that
// revisit the same (app, seed), and its content-hash run memo lets
// experiments that share (machine, app, seed) cells simulate them
// once. -cpuprofile and -memprofile write pprof profiles of the run.
// -audit selects the invariant-audit mode for every simulation (off,
// warn or strict; see internal/invariant).
//
// -sample runs every experiment set-sampled (e.g. -sample 1/8
// simulates one in eight cache-set groups and scales the reports back
// to full-cache estimates) — a near-linear speedup with bounded error;
// see EXPERIMENTS.md for the measured bounds. -sample-validate runs
// the sampled-vs-exact comparison grid for the chosen spec instead of
// the experiments, prints the per-machine relative errors and the
// wall-clock speedup, and exits non-zero if any machine breaches the
// 2% tolerance.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"mobilecache/internal/engine"
	"mobilecache/internal/experiments"
	"mobilecache/internal/profiling"
	"mobilecache/internal/sample"
	"mobilecache/internal/sim"
	"mobilecache/internal/workload"
)

// validateTolerance is the relative-error bound -sample-validate
// enforces per machine on both headline metrics (L2 miss rate, total
// energy) — the bound EXPERIMENTS.md documents for the shipped specs.
const validateTolerance = 0.02

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mcbench", flag.ContinueOnError)
	expID := fs.String("experiment", "", "experiment ID (default: all)")
	accesses := fs.Int("accesses", experiments.DefaultOptions().Accesses, "accesses per app")
	seed := fs.Uint64("seed", 1, "workload seed")
	apps := fs.String("apps", "", "comma-separated app subset (default: all ten)")
	list := fs.Bool("list", false, "list experiments and exit")
	csvDir := fs.String("csv", "", "directory to dump tables as CSV")
	mdDir := fs.String("md", "", "directory to dump tables as Markdown")
	svgDir := fs.String("svg", "", "directory to write SVG figures")
	traceCacheMB := fs.Int("trace-cache-mb", 256, "trace arena LRU budget in MB (0 = unlimited)")
	audit := fs.String("audit", "warn", "invariant audit mode: off, warn or strict")
	sampleArg := fs.String("sample", "", `set-sampling spec, e.g. "1/8" or "hash:1/8" (default: exact simulation)`)
	sampleValidate := fs.Bool("sample-validate", false, "run the sampled-vs-exact validation grid instead of the experiments")
	segWorkers := fs.Int("segment-workers", 0, "split every cell's replay into this many concurrent segments (0/1 = serial)")
	segWarmup := fs.Int("segment-warmup", 0, "per-segment warmup records for -segment-workers (0 = default, <0 = exact full-prefix oracle)")
	segValidate := fs.Bool("segment-validate", false, "run the segmented-vs-serial stitch audit grid instead of the experiments")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile here")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Fail fast on bad settings and unwritable destinations: a full
	// benchmark run is hours of simulation, and discovering a typoed
	// output directory after the first experiment finishes wastes all
	// of it.
	if *accesses <= 0 {
		return fmt.Errorf("-accesses %d is not a runnable access count (need >= 1)", *accesses)
	}
	if *traceCacheMB < 0 {
		return fmt.Errorf("-trace-cache-mb %d is negative; use 0 for an unlimited arena", *traceCacheMB)
	}
	if *expID != "" && !*list {
		known := false
		for _, id := range experiments.IDs() {
			if id == *expID {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("-experiment %q is not a known ID (see -list)", *expID)
		}
	}
	for _, d := range []struct{ flag, dir string }{
		{"-csv", *csvDir}, {"-md", *mdDir}, {"-svg", *svgDir},
	} {
		if err := checkWritableDir(d.flag, d.dir); err != nil {
			return err
		}
	}
	if *segWorkers < 0 {
		return fmt.Errorf("-segment-workers %d is negative; use 0 or 1 for serial cells", *segWorkers)
	}
	if *segWorkers > 1 && *sampleArg != "" {
		return fmt.Errorf("-segment-workers does not compose with -sample")
	}
	var sampleSpec sample.Spec
	if *sampleArg != "" {
		var err error
		sampleSpec, err = sample.Parse(*sampleArg)
		if err != nil {
			return fmt.Errorf("-sample: %w", err)
		}
	}
	if *sampleValidate && !sampleSpec.Enabled() {
		// Validating the default spec without -sample keeps the common
		// invocation short: mcbench -sample-validate.
		sampleSpec = sample.Spec{Factor: 8}
	}
	restoreAudit, err := engine.ApplyAudit(*audit)
	if err != nil {
		return fmt.Errorf("-audit: %w", err)
	}
	defer restoreAudit()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintf(out, "%-4s %s\n", id, experiments.Title(id))
		}
		return nil
	}

	stopProfile, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfile(); perr != nil {
			fmt.Fprintln(os.Stderr, "mcbench: profile:", perr)
		}
	}()

	opts := experiments.Options{
		Accesses: *accesses,
		Seed:     *seed,
		Apps:     workload.Profiles(),
		Engine:   engine.New(engine.Config{TraceBudgetBytes: engine.TraceBudgetMB(*traceCacheMB)}),
		Sample:   sampleSpec,
	}
	if *apps != "" {
		opts.Apps = nil
		for _, name := range strings.Split(*apps, ",") {
			p, err := workload.ProfileByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			opts.Apps = append(opts.Apps, p)
		}
	}

	if *sampleValidate {
		return runSampleValidate(opts, sampleSpec, out)
	}
	if *segValidate {
		workers := *segWorkers
		if workers <= 1 {
			// Auditing the default segmentation without -segment-workers
			// keeps the common invocation short: mcbench -segment-validate.
			workers = 4
		}
		return runSegmentValidate(opts, sim.SegmentPlan{Segments: workers, Warmup: *segWarmup, Workers: workers}, out)
	}
	if *segWorkers > 1 {
		return fmt.Errorf("-segment-workers applies to -segment-validate; the experiment grids replay serially")
	}

	ids := experiments.IDs()
	if *expID != "" {
		ids = []string{*expID}
	}
	// The whole run shares one engine, so the end-of-run summary on
	// stderr reports how its run memo and trace arena performed across
	// every experiment (mcsweep prints the same line per sweep).
	defer func() {
		fmt.Fprintf(os.Stderr, "mcbench: %s\n",
			engine.CacheSummary(opts.Engine.MemoStats(), opts.Engine.Store().Stats()))
	}()
	for _, id := range ids {
		res, err := experiments.Run(id, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "=== %s: %s ===\n", res.ID, res.Title)
		fmt.Fprintf(out, "paper: %s\n\n", res.Paper)
		for ti, tb := range res.Tables {
			if err := tb.Fprint(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
			if *csvDir != "" {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", res.ID, ti))
				if err := dumpTable(path, tb.WriteCSV); err != nil {
					return err
				}
			}
			if *mdDir != "" {
				path := filepath.Join(*mdDir, fmt.Sprintf("%s_%d.md", res.ID, ti))
				if err := dumpTable(path, tb.WriteMarkdown); err != nil {
					return err
				}
			}
		}
		if *svgDir != "" {
			for name, svg := range res.Figures {
				path := filepath.Join(*svgDir, name)
				if err := dumpTable(path, func(w io.Writer) error {
					_, err := io.WriteString(w, svg)
					return err
				}); err != nil {
					return err
				}
				fmt.Fprintf(out, "figure: %s\n", path)
			}
		}
		for _, n := range res.Notes {
			fmt.Fprintf(out, "finding: %s\n", n)
		}
		fmt.Fprintln(out)
	}
	return nil
}

// runSampleValidate executes the sampled-vs-exact comparison grid
// (every standard machine × the selected apps × two seed bases) and
// renders the per-machine error table, the wall-clock speedup and the
// verdict. A tolerance breach is the returned error, so the process
// exits non-zero — the same contract CI relies on.
func runSampleValidate(opts experiments.Options, spec sample.Spec, out io.Writer) error {
	opts.Sample = sample.Spec{} // the helper runs both arms itself
	v, err := experiments.ValidateSample(opts, spec, validateTolerance)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "sampling validation: spec %s, %d apps x 2 seed bases, %d accesses/app\n\n",
		v.Spec, len(opts.Apps), opts.Accesses)
	fmt.Fprintf(out, "%-16s %12s %12s %8s %13s %13s %8s\n",
		"machine", "mr(full)", "mr(sampled)", "err", "E(full) J", "E(sampled) J", "err")
	for _, m := range v.Machines {
		fmt.Fprintf(out, "%-16s %12.4f %12.4f %7.2f%% %13.4e %13.4e %7.2f%%\n",
			m.Machine, m.FullMissRate, m.SampledMissRate, 100*m.MissRateRelErr,
			m.FullEnergyJ, m.SampledEnergyJ, 100*m.EnergyRelErr)
	}
	fmt.Fprintf(out, "\nwall clock: full %v, sampled %v (%.1fx speedup)\n",
		v.FullWall.Round(time.Millisecond), v.SampledWall.Round(time.Millisecond), v.Speedup())
	if err := v.Err(); err != nil {
		fmt.Fprintf(out, "FAIL: %v\n", err)
		return err
	}
	fmt.Fprintf(out, "PASS: every machine within %.1f%% on both metrics\n", 100*validateTolerance)
	return nil
}

// runSegmentValidate executes the segmented-vs-serial stitch audit
// grid (every standard machine × the selected apps × two seed bases)
// and renders the per-machine error table, the wall-clock comparison
// and the verdict. A tolerance breach is the returned error, so the
// process exits non-zero — the same contract the sampling validator
// has. In oracle mode (-segment-warmup -1) any miss-rate error at all
// is a stitching bug; the tolerance then only covers float-association
// noise in the energy terms.
func runSegmentValidate(opts experiments.Options, seg sim.SegmentPlan, out io.Writer) error {
	v, err := experiments.ValidateSegmented(opts, seg, validateTolerance)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "segmented replay audit: %d segments, warmup %d, %d apps x 2 seed bases, %d accesses/app\n\n",
		v.Plan.Segments, v.Plan.Warmup, len(opts.Apps), opts.Accesses)
	fmt.Fprintf(out, "%-16s %12s %12s %8s %13s %13s %8s\n",
		"machine", "mr(serial)", "mr(seg)", "err", "E(serial) J", "E(seg) J", "err")
	for _, m := range v.Machines {
		fmt.Fprintf(out, "%-16s %12.4f %12.4f %7.2f%% %13.4e %13.4e %7.2f%%\n",
			m.Machine, m.SerialMissRate, m.SegmentedMissRate, 100*m.MissRateRelErr,
			m.SerialEnergyJ, m.SegmentedEnergyJ, 100*m.EnergyRelErr)
	}
	fmt.Fprintf(out, "\nwall clock: serial %v, segmented %v (%.1fx speedup, GOMAXPROCS=%d)\n",
		v.SerialWall.Round(time.Millisecond), v.SegmentedWall.Round(time.Millisecond),
		v.Speedup(), runtime.GOMAXPROCS(0))
	if err := v.Err(); err != nil {
		fmt.Fprintf(out, "FAIL: %v\n", err)
		return err
	}
	fmt.Fprintf(out, "PASS: every machine within %.1f%% on both metrics\n", 100*validateTolerance)
	return nil
}

// checkWritableDir proves an output directory can actually receive
// files before any simulation starts: create it if needed, then create
// and remove a probe file.
func checkWritableDir(flagName, dir string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("%s: creating %s: %w", flagName, dir, err)
	}
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return fmt.Errorf("%s: directory %s is not writable: %w", flagName, dir, err)
	}
	name := probe.Name()
	probe.Close()
	return os.Remove(name)
}

// dumpTable writes one table rendering to path, creating directories.
func dumpTable(path string, write func(io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
