// mcbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mcbench                      # run every experiment at full scale
//	mcbench -experiment E7       # one experiment
//	mcbench -accesses 100000 -apps browser,email   # smaller/narrower
//	mcbench -list                # list experiment IDs and titles
//	mcbench -csv dir/            # additionally dump each table as CSV
//
// Experiment IDs E1..E12 are the reconstructed figures, T1/T2 the
// tables; see DESIGN.md for the per-experiment index.
//
// Every experiment in a run shares one trace arena
// (internal/tracestore), bounded by -trace-cache-mb, so experiments
// that revisit the same (app, seed) replay cached packed traces
// instead of regenerating them. -cpuprofile and -memprofile write
// pprof profiles of the run. -audit selects the invariant-audit mode
// for every simulation (off, warn or strict; see internal/invariant).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"mobilecache/internal/experiments"
	"mobilecache/internal/invariant"
	"mobilecache/internal/sim"
	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mcbench", flag.ContinueOnError)
	expID := fs.String("experiment", "", "experiment ID (default: all)")
	accesses := fs.Int("accesses", experiments.DefaultOptions().Accesses, "accesses per app")
	seed := fs.Uint64("seed", 1, "workload seed")
	apps := fs.String("apps", "", "comma-separated app subset (default: all ten)")
	list := fs.Bool("list", false, "list experiments and exit")
	csvDir := fs.String("csv", "", "directory to dump tables as CSV")
	mdDir := fs.String("md", "", "directory to dump tables as Markdown")
	svgDir := fs.String("svg", "", "directory to write SVG figures")
	traceCacheMB := fs.Int("trace-cache-mb", 256, "trace arena LRU budget in MB (0 = unlimited)")
	audit := fs.String("audit", "warn", "invariant audit mode: off, warn or strict")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile here")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := invariant.ParseMode(*audit)
	if err != nil {
		return fmt.Errorf("-audit: %w", err)
	}
	restoreAudit := sim.SetAuditMode(mode)
	defer restoreAudit()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintf(out, "%-4s %s\n", id, experiments.Title(id))
		}
		return nil
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mcbench: memprofile:", err)
				return
			}
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mcbench: memprofile:", err)
			}
			f.Close()
		}()
	}

	opts := experiments.Options{
		Accesses:   *accesses,
		Seed:       *seed,
		Apps:       workload.Profiles(),
		TraceStore: tracestore.New(int64(*traceCacheMB) << 20),
	}
	if *apps != "" {
		opts.Apps = nil
		for _, name := range strings.Split(*apps, ",") {
			p, err := workload.ProfileByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			opts.Apps = append(opts.Apps, p)
		}
	}

	ids := experiments.IDs()
	if *expID != "" {
		ids = []string{*expID}
	}
	for _, id := range ids {
		res, err := experiments.Run(id, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "=== %s: %s ===\n", res.ID, res.Title)
		fmt.Fprintf(out, "paper: %s\n\n", res.Paper)
		for ti, tb := range res.Tables {
			if err := tb.Fprint(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
			if *csvDir != "" {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", res.ID, ti))
				if err := dumpTable(path, tb.WriteCSV); err != nil {
					return err
				}
			}
			if *mdDir != "" {
				path := filepath.Join(*mdDir, fmt.Sprintf("%s_%d.md", res.ID, ti))
				if err := dumpTable(path, tb.WriteMarkdown); err != nil {
					return err
				}
			}
		}
		if *svgDir != "" {
			for name, svg := range res.Figures {
				path := filepath.Join(*svgDir, name)
				if err := dumpTable(path, func(w io.Writer) error {
					_, err := io.WriteString(w, svg)
					return err
				}); err != nil {
					return err
				}
				fmt.Fprintf(out, "figure: %s\n", path)
			}
		}
		for _, n := range res.Notes {
			fmt.Fprintf(out, "finding: %s\n", n)
		}
		fmt.Fprintln(out)
	}
	return nil
}

// dumpTable writes one table rendering to path, creating directories.
func dumpTable(path string, write func(io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
