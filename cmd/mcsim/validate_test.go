package main

import (
	"bytes"
	"strings"
	"testing"
)

// Bad flag values fail before any config or trace file is touched —
// in particular a negative -accesses, which would otherwise wrap to an
// enormous uint64 replay bound.
func TestFailFastValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-accesses", "-1"}, "-accesses"},
		{[]string{"-accesses", "-1", "-trace", "nonexistent.mctr"}, "-accesses"},
		{[]string{"-audit", "loud"}, "-audit"},
		{[]string{"-sample", "3"}, "-sample"},
		{[]string{"-sample", "1/0"}, "-sample"},
	}
	for _, tc := range cases {
		var out bytes.Buffer
		err := run(tc.args, &out)
		if err == nil {
			t.Errorf("run(%v) succeeded, want fail-fast error", tc.args)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("run(%v) error %q does not name %q", tc.args, err, tc.want)
		}
	}
}
