// mcsim runs one workload through one machine configuration and prints
// timing, cache and energy statistics. Generated-app runs go through
// the shared execution pipeline (internal/engine), so mcsim uses the
// same trace arena, run memo and invariant audit as mcbench and
// mcsweep; trace-file replays drive the simulator directly and are
// audited the same way.
//
// Usage:
//
//	mcsim [-machine name | -config file.json] [-app name | -trace file]
//	      [-accesses n] [-seed s] [-audit off|warn|strict] [-sample spec]
//	      [-segment-workers n [-segment-warmup w]] [-dump-config]
//
// Examples:
//
//	mcsim -machine sp-mr -app browser -accesses 400000
//	mcsim -config mymachine.json -trace captured.mctr
//	mcsim -machine dp-sr -app music -audit strict
//	mcsim -machine sp -app browser -sample 1/8   # set-sampled estimate
//	mcsim -machine dp -dump-config   # print the JSON for editing
//
// -sample runs the simulation set-sampled (internal/sample): "1/8"
// simulates one in eight cache-set groups and scales the report back
// to a full-cache estimate (the report then carries a "sampling" row).
// It applies to generated apps and trace-file replays alike; error
// bounds are documented in EXPERIMENTS.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mobilecache/internal/config"
	"mobilecache/internal/engine"
	"mobilecache/internal/report"
	"mobilecache/internal/sample"
	"mobilecache/internal/sim"
	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mcsim", flag.ContinueOnError)
	machine := fs.String("machine", "baseline-sram", "standard machine name ("+strings.Join(sim.StandardMachineNames(), ", ")+")")
	cfgPath := fs.String("config", "", "machine config JSON file (overrides -machine)")
	app := fs.String("app", "browser", "app profile ("+strings.Join(workload.ProfileNames(), ", ")+")")
	tracePath := fs.String("trace", "", "binary trace file to replay (overrides -app)")
	accesses := fs.Int("accesses", 400_000, "accesses to simulate (0 = whole trace)")
	seed := fs.Uint64("seed", 1, "workload generator seed")
	audit := fs.String("audit", "warn", "invariant audit mode: off, warn or strict")
	sampleArg := fs.String("sample", "", `set-sampling spec, e.g. "1/8" or "hash:1/8" (default: exact simulation)`)
	segWorkers := fs.Int("segment-workers", 0, "split the replay into this many segments replayed concurrently (0/1 = serial; see -segment-warmup)")
	segWarmup := fs.Int("segment-warmup", 0, "per-segment warmup records for -segment-workers (0 = default, <0 = exact full-prefix oracle)")
	dump := fs.Bool("dump-config", false, "print the machine config as JSON and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Fail fast: a negative -accesses would otherwise wrap to a huge
	// uint64 replay bound, and a bad -audit mode should be caught before
	// any config or trace file is touched.
	if *accesses < 0 {
		return fmt.Errorf("-accesses %d is negative; use 0 to replay a whole trace", *accesses)
	}
	if *segWorkers < 0 {
		return fmt.Errorf("-segment-workers %d is negative; use 0 or 1 for a serial replay", *segWorkers)
	}
	if *segWorkers > 1 && *sampleArg != "" {
		return fmt.Errorf("-segment-workers does not compose with -sample")
	}
	if *segWorkers > 1 && *tracePath != "" {
		return fmt.Errorf("-segment-workers needs a generated app (trace-file replays have no arena identity)")
	}
	if err := engine.CheckAudit(*audit); err != nil {
		return fmt.Errorf("-audit: %w", err)
	}
	var spec sample.Spec
	if *sampleArg != "" {
		var err error
		spec, err = sample.Parse(*sampleArg)
		if err != nil {
			return fmt.Errorf("-sample: %w", err)
		}
	}

	cfg, err := sim.MachineByName(*machine)
	if err != nil {
		return err
	}
	if *cfgPath != "" {
		cfg, err = config.LoadFile(*cfgPath)
		if err != nil {
			return err
		}
	}
	if *dump {
		return cfg.Save(out)
	}

	restoreAudit, err := engine.ApplyAudit(*audit)
	if err != nil {
		return fmt.Errorf("-audit: %w", err)
	}
	defer restoreAudit()

	var rep sim.RunReport
	if *tracePath != "" {
		rep, err = replayTraceFile(cfg, *tracePath, uint64(*accesses), spec)
	} else {
		if *accesses <= 0 {
			return fmt.Errorf("-accesses must be positive with a generated workload")
		}
		var prof workload.Profile
		prof, err = workload.ProfileByName(*app)
		if err != nil {
			return err
		}
		eng := engine.New(engine.Config{})
		cell := engine.Cell{Machine: cfg.Name, Config: cfg, App: prof.Name, Profile: prof, Seed: *seed}
		if *segWorkers > 1 {
			rep, err = eng.RunOneSegmented(context.Background(), cell,
				*accesses, sim.SegmentPlan{Segments: *segWorkers, Warmup: *segWarmup, Workers: *segWorkers})
		} else {
			rep, err = eng.RunOneSampled(context.Background(), cell, *accesses, 0, spec)
		}
		// One-shot runs still report the shared caching layer: the line is
		// mostly misses here, but it keeps the four front ends' summary
		// format identical for scripts that scrape it.
		if err == nil {
			fmt.Fprintf(os.Stderr, "mcsim: %s\n",
				engine.CacheSummary(eng.MemoStats(), eng.Store().Stats()))
		}
	}
	if err != nil {
		return err
	}
	return printReport(out, rep)
}

// replayTraceFile drives a captured trace straight through the
// simulator (a file replay has no profile identity for the shared
// arena) and applies the process audit mode to the result. An enabled
// sampling spec replays the trace through the sampled machine and
// scales the report, exactly as the engine does for generated apps.
func replayTraceFile(cfg config.Machine, path string, maxAccesses uint64, spec sample.Spec) (sim.RunReport, error) {
	m, err := sim.BuildSampled(cfg, spec)
	if err != nil {
		return sim.RunReport{}, err
	}
	r, closer, err := trace.OpenFile(path) // handles .gz
	if err != nil {
		return sim.RunReport{}, err
	}
	defer closer.Close()
	defer func() {
		if r.Err() != nil {
			fmt.Fprintln(os.Stderr, "mcsim: trace warning:", r.Err())
		}
	}()
	// RunSampledTrace audits internally (raw counters before scaling),
	// so no ApplyAudit wrapper here — double-auditing a scaled report
	// would check different numbers than the run produced.
	return sim.RunSampledTrace(m, path, r, maxAccesses)
}

func printReport(out io.Writer, rep sim.RunReport) error {
	tb := report.NewTable(fmt.Sprintf("mcsim: %s on %s", rep.Workload, rep.Machine), "metric", "value")
	if rep.SampleFactor > 1 {
		tb.AddRow("sampling", fmt.Sprintf("1/%d of set groups (scaled estimate)", rep.SampleFactor))
	}
	if rep.Segments > 1 {
		tb.AddRow("segmented", fmt.Sprintf("%d segments, stitched estimate", rep.Segments))
	}
	tb.AddRow("accesses", fmt.Sprint(rep.CPU.Accesses))
	tb.AddRow("instructions", fmt.Sprint(rep.CPU.Instructions))
	tb.AddRow("cycles", fmt.Sprint(rep.CPU.Cycles))
	tb.AddRow("IPC", fmt.Sprintf("%.4f", rep.IPC()))
	tb.AddRow("memory stall fraction", report.Pct(rep.CPU.StallFraction()))
	tb.AddRow("L2 accesses", fmt.Sprint(rep.L2.TotalAccesses()))
	tb.AddRow("L2 miss rate", report.Pct(rep.L2.MissRate()))
	tb.AddRow("L2 kernel access share", report.Pct(rep.L2.KernelShare()))
	tb.AddRow("L2 interference evictions", fmt.Sprint(rep.L2.InterferenceEvictions))
	tb.AddRow("L2 expiry invalidations", fmt.Sprint(rep.L2.ExpiryInvalidations))
	tb.AddRow("L2 refreshes", fmt.Sprint(rep.L2.Refreshes))
	tb.AddRow("L2 installed / powered", report.Bytes(rep.L2InstalledBytes)+" / "+report.Bytes(rep.L2PoweredBytes))
	tb.AddRow("DRAM reads / writes", fmt.Sprintf("%d / %d", rep.DRAMReads, rep.DRAMWrites))
	bd := rep.Energy.L2
	tb.AddRow("L2 energy: read", report.Joules(bd.ReadJ))
	tb.AddRow("L2 energy: write", report.Joules(bd.WriteJ))
	tb.AddRow("L2 energy: leakage", report.Joules(bd.LeakageJ))
	tb.AddRow("L2 energy: refresh", report.Joules(bd.RefreshJ))
	tb.AddRow("L2 energy: total", report.Joules(bd.Total()))
	tb.AddRow("hierarchy energy total", report.Joules(rep.Energy.TotalJ()))
	if err := tb.Fprint(out); err != nil {
		return err
	}
	if len(rep.History) > 0 {
		_, err := fmt.Fprintf(out, "\ndynamic partition: %d epochs, final allocation u=%d k=%d gated=%d, %d flush writebacks\n",
			len(rep.History),
			rep.History[len(rep.History)-1].UserWays,
			rep.History[len(rep.History)-1].KernelWays,
			rep.History[len(rep.History)-1].GatedWays,
			rep.FlushWritebacks)
		return err
	}
	return nil
}
