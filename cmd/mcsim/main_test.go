package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobilecache/internal/sim"
	"mobilecache/internal/trace"
)

func TestRunStandardMachineApp(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-machine", "sp-mr", "-app", "music", "-accesses", "20000"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"music on sp-mr", "L2 miss rate", "L2 energy: total", "IPC"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunDynamicPrintsHistory(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-machine", "dp", "-app", "email", "-accesses", "60000"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dynamic partition:") {
		t.Fatalf("dynamic run did not print partition summary:\n%s", out.String())
	}
}

func TestRunDumpConfig(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-machine", "dp-sr", "-dump-config"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"scheme": "dynamic"`) {
		t.Fatalf("dump-config output wrong:\n%s", out.String())
	}
}

func TestRunConfigFileRoundTrip(t *testing.T) {
	// Dump a config, reload it via -config, and run with it.
	var dumped bytes.Buffer
	if err := run([]string{"-machine", "sp", "-dump-config"}, &dumped); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "machine.json")
	if err := os.WriteFile(path, dumped.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-config", path, "-app", "game", "-accesses", "10000"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "game on sp") {
		t.Fatalf("config-file run wrong:\n%s", out.String())
	}
}

func TestRunTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.mctr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(f)
	for i := 0; i < 500; i++ {
		if err := w.Write(trace.Access{Addr: uint64(i) * 64, Op: trace.Load, Domain: trace.User}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-trace", path, "-accesses", "0"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "accesses") || !strings.Contains(out.String(), "500") {
		t.Fatalf("trace replay output wrong:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-machine", "nonexistent"},
		{"-app", "nonexistent"},
		{"-config", "/does/not/exist.json"},
		{"-trace", "/does/not/exist.mctr"},
		{"-app", "browser", "-accesses", "0"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestRunSampleFlag: -sample runs the simulation set-sampled and the
// report says so; malformed specs are rejected before anything runs.
func TestRunSampleFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-machine", "sp-mr", "-app", "music", "-accesses", "40000", "-sample", "1/8"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"sampling", "1/8 of set groups", "L2 energy: total"} {
		if !strings.Contains(s, want) {
			t.Errorf("sampled output missing %q:\n%s", want, s)
		}
	}

	for _, bad := range []string{"0", "1/0", "3", "1/3", "256", "hash:", "nonsense"} {
		out.Reset()
		err := run([]string{"-machine", "sp", "-app", "browser", "-accesses", "1000", "-sample", bad}, &out)
		if err == nil || !strings.Contains(err.Error(), "-sample") {
			t.Errorf("-sample %q returned %v, want a -sample error", bad, err)
		}
	}
}

// TestRunSampleTraceReplay: -sample also covers the trace-file replay
// path and the sampled report still carries the factor row.
func TestRunSampleTraceReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.mctr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(f)
	for i := 0; i < 4000; i++ {
		if err := w.Write(trace.Access{Addr: uint64(i) * 64, Op: trace.Load, Domain: trace.User, Gap: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-trace", path, "-accesses", "0", "-sample", "1/8"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1/8 of set groups") {
		t.Fatalf("sampled trace replay missing sampling row:\n%s", out.String())
	}
}

// TestRunAuditFlag: -audit gates every mcsim path the way it does for
// mcbench/mcsweep — bad modes are rejected up front, strict mode turns
// a miscounted report into a failure, and off mode lets it through.
func TestRunAuditFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-audit", "loud"}, &out); err == nil || !strings.Contains(err.Error(), "-audit") {
		t.Fatalf("bad audit mode returned %v, want an -audit error", err)
	}

	restoreTamper := sim.SetAuditTamper(func(r *sim.RunReport) { r.DRAMReads++ })
	defer restoreTamper()

	args := []string{"-machine", "baseline-sram", "-app", "browser", "-accesses", "10000"}
	out.Reset()
	if err := run(append(args, "-audit", "strict"), &out); err == nil {
		t.Fatal("strict audit let a tampered generated-app report pass")
	}
	out.Reset()
	if err := run(append(args, "-audit", "off"), &out); err != nil {
		t.Fatalf("off audit rejected the run: %v", err)
	}
}

// TestRunAuditFlagTraceReplay: strict audit also covers the raw
// trace-file replay path (which bypasses the engine).
func TestRunAuditFlagTraceReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.mctr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(f)
	for i := 0; i < 300; i++ {
		if err := w.Write(trace.Access{Addr: uint64(i) * 64, Op: trace.Load, Domain: trace.User}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	restoreTamper := sim.SetAuditTamper(func(r *sim.RunReport) { r.DRAMReads++ })
	defer restoreTamper()

	var out bytes.Buffer
	if err := run([]string{"-trace", path, "-accesses", "0", "-audit", "strict"}, &out); err == nil {
		t.Fatal("strict audit let a tampered trace-replay report pass")
	}
	out.Reset()
	if err := run([]string{"-trace", path, "-accesses", "0", "-audit", "off"}, &out); err != nil {
		t.Fatalf("off audit rejected the replay: %v", err)
	}
}
