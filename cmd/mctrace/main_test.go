package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenInfoCatPipeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.mctr")
	var out bytes.Buffer
	if err := run([]string{"gen", "-app", "video", "-n", "5000", "-seed", "3", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing or empty: %v", err)
	}

	out.Reset()
	if err := run([]string{"info", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "records") || !strings.Contains(s, "5000") {
		t.Fatalf("info output wrong:\n%s", s)
	}
	if !strings.Contains(s, "kernel share") {
		t.Fatalf("info missing kernel share:\n%s", s)
	}

	out.Reset()
	if err := run([]string{"cat", "-n", "10", path}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("cat -n 10 printed %d lines", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "user ") && !strings.HasPrefix(l, "kernel ") {
			t.Fatalf("cat line malformed: %q", l)
		}
	}
}

func TestGenTextFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.txt")
	var out bytes.Buffer
	if err := run([]string{"gen", "-app", "music", "-n", "100", "-text", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 100 {
		t.Fatalf("text gen produced %d lines, want 100", len(lines))
	}
}

func TestGenDeterministic(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.mctr"), filepath.Join(dir, "b.mctr")
	var out bytes.Buffer
	if err := run([]string{"gen", "-app", "game", "-n", "2000", "-seed", "9", "-o", a}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"gen", "-app", "game", "-n", "2000", "-seed", "9", "-o", b}, &out); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if !bytes.Equal(da, db) {
		t.Fatal("same-seed traces differ")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"unknown"},
		{"gen", "-app", "nope"},
		{"gen", "-n", "-5"},
		{"gen", "-n", "0"},
		{"info"},
		{"info", "/does/not/exist"},
		{"cat"},
		{"cat", "/does/not/exist"},
	}
	for _, args := range cases {
		var out bytes.Buffer
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestGenFailsFast pins the flag-validation parity with mcbench and
// mcsim: invalid counts and unwritable output paths must be rejected
// before any profile loading or generation work, with a usage-style
// message.
func TestGenFailsFast(t *testing.T) {
	var out bytes.Buffer
	// A bad count must be reported as a count problem even when the
	// profile is also bogus — count validation runs first.
	err := run([]string{"gen", "-app", "nope", "-n", "0"}, &out)
	if err == nil || !strings.Contains(err.Error(), "usage: mctrace gen") {
		t.Fatalf("gen -n 0 error = %v, want usage line", err)
	}
	// An output path in a nonexistent directory dies before generation,
	// for both binary and text formats.
	for _, args := range [][]string{
		{"gen", "-app", "video", "-n", "1000", "-o", "/does/not/exist/t.mctr"},
		{"gen", "-app", "video", "-n", "1000", "-text", "-o", "/does/not/exist/t.txt"},
	} {
		err := run(args, &out)
		if err == nil || !strings.Contains(err.Error(), "not writable") {
			t.Fatalf("run(%v) error = %v, want unwritable-path error", args, err)
		}
	}
}

func TestCatRejectsNegativeCount(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.mctr")
	var out bytes.Buffer
	if err := run([]string{"gen", "-app", "music", "-n", "100", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"cat", "-n", "-3", path}, &out)
	if err == nil || !strings.Contains(err.Error(), "usage: mctrace cat") {
		t.Fatalf("cat -n -3 error = %v, want usage line", err)
	}
}

func TestProfilesListAndDump(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"profiles"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "browser") || !strings.Contains(out.String(), "kernel share") {
		t.Fatalf("profiles list wrong:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"profiles", "-dump", "video"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"kernel_share"`) {
		t.Fatalf("profile dump wrong:\n%s", out.String())
	}
	if err := run([]string{"profiles", "-dump", "nope"}, &out); err == nil {
		t.Fatal("unknown profile dumped")
	}
}

func TestGenWithCustomProfile(t *testing.T) {
	dir := t.TempDir()
	profPath := filepath.Join(dir, "custom.json")
	var dump bytes.Buffer
	if err := run([]string{"profiles", "-dump", "reader"}, &dump); err != nil {
		t.Fatal(err)
	}
	// Tweak the dumped profile: rename it.
	text := strings.Replace(dump.String(), `"name": "reader"`, `"name": "custom"`, 1)
	if err := os.WriteFile(profPath, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := filepath.Join(dir, "c.mctr")
	var out bytes.Buffer
	if err := run([]string{"gen", "-profile", profPath, "-n", "1000", "-o", tracePath}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"info", tracePath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "1000") {
		t.Fatalf("custom profile trace wrong:\n%s", out.String())
	}
	// Bad profile path must fail.
	if err := run([]string{"gen", "-profile", "/does/not/exist.json"}, &out); err == nil {
		t.Fatal("missing profile accepted")
	}
}

func TestGzipTracePipeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.mctr.gz")
	var out bytes.Buffer
	if err := run([]string{"gen", "-app", "office", "-n", "3000", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"info", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3000") {
		t.Fatalf("gzip info wrong:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"cat", "-n", "5", path}, &out); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(out.String()), "\n"); len(lines) != 5 {
		t.Fatalf("gzip cat printed %d lines", len(lines))
	}
}

func TestAnalyze(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.mctr")
	var out bytes.Buffer
	if err := run([]string{"gen", "-app", "email", "-n", "20000", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"analyze", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"reuse analysis", "user", "kernel", "footprint", "@1MB"} {
		if !strings.Contains(s, want) {
			t.Fatalf("analyze output missing %q:\n%s", want, s)
		}
	}
	// Errors.
	if err := run([]string{"analyze"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run([]string{"analyze", "-block", "48", path}, &out); err == nil {
		t.Fatal("bad block accepted")
	}
	if err := run([]string{"analyze", "/does/not/exist"}, &out); err == nil {
		t.Fatal("missing path accepted")
	}
}

func TestInfoRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(path, []byte("this is not a trace"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"info", path}, &out); err == nil {
		t.Fatal("garbage trace accepted")
	}
}
