// mctrace generates and inspects mobilecache trace files.
//
// Usage:
//
//	mctrace gen -app browser -n 1000000 -seed 1 -o browser.mctr [-text]
//	mctrace gen -profile custom.json -n 500000 -o custom.mctr
//	mctrace info trace.mctr
//	mctrace cat trace.mctr [-n 20]
//	mctrace profiles [-dump name]
//
// gen writes a synthetic trace for one app profile (built-in via -app,
// or a custom JSON profile via -profile); info summarizes a trace
// (record counts, kernel share, address range); cat prints records in
// the text format; profiles lists the built-in app profiles or dumps
// one as editable JSON.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mobilecache/internal/report"
	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mctrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mctrace gen|info|cat [flags]")
	}
	switch args[0] {
	case "gen":
		return genCmd(args[1:], out)
	case "info":
		return infoCmd(args[1:], out)
	case "cat":
		return catCmd(args[1:], out)
	case "profiles":
		return profilesCmd(args[1:], out)
	case "analyze":
		return analyzeCmd(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want gen, info, cat, analyze or profiles)", args[0])
	}
}

// analyzeCmd computes per-domain reuse-distance distributions — the
// statistic that determines each domain's miss curve and hence the
// segment sizes the paper's designs pick.
func analyzeCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	block := fs.Int("block", 64, "block granularity (power of two)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mctrace analyze [-block n] <file>")
	}
	if *block <= 0 || *block&(*block-1) != 0 {
		return fmt.Errorf("block %d must be a power of two", *block)
	}
	f, r, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	ra := trace.Analyze(r, *block)
	if r.Err() != nil {
		return r.Err()
	}

	tb := report.NewTable(fmt.Sprintf("reuse analysis of %s (%dB blocks)", fs.Arg(0), *block),
		"domain", "accesses", "footprint", "cold misses", "est hitrate @256KB", "@512KB", "@1MB")
	for _, d := range []trace.Domain{trace.User, trace.Kernel} {
		st := ra.Stats(d)
		blocksOf := func(bytes uint64) uint64 { return bytes / uint64(*block) }
		tb.AddRow(d.String(),
			fmt.Sprint(st.Accesses),
			report.Bytes(st.DistinctBlocks*uint64(*block)),
			fmt.Sprint(st.ColdMisses),
			report.Pct(st.HitRateAt(blocksOf(256<<10))),
			report.Pct(st.HitRateAt(blocksOf(512<<10))),
			report.Pct(st.HitRateAt(blocksOf(1<<20))))
	}
	return tb.Fprint(out)
}

func profilesCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("profiles", flag.ContinueOnError)
	dump := fs.String("dump", "", "dump one profile as editable JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dump != "" {
		p, err := workload.ProfileByName(*dump)
		if err != nil {
			return err
		}
		return workload.SaveProfile(out, p)
	}
	tb := report.NewTable("built-in app profiles", "name", "kernel share", "user set", "kernel set", "description")
	for _, p := range workload.Profiles() {
		tb.AddRow(p.Name,
			fmt.Sprintf("%.0f%%", p.KernelShare*100),
			fmt.Sprintf("%dKB", p.UserWorkingSet/1024),
			fmt.Sprintf("%dKB", p.KernelWorkingSet/1024),
			p.Description)
	}
	return tb.Fprint(out)
}

func genCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	app := fs.String("app", "browser", "app profile ("+strings.Join(workload.ProfileNames(), ", ")+")")
	profPath := fs.String("profile", "", "custom profile JSON file (overrides -app)")
	n := fs.Int("n", 1_000_000, "number of accesses")
	seed := fs.Uint64("seed", 1, "generator seed")
	outPath := fs.String("o", "", "output file (default stdout)")
	text := fs.Bool("text", false, "write the text format instead of binary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Fail fast before any profile or file work, matching mcbench and
	// mcsim: a million-record generation into an unwritable path (or a
	// nonsensical count) should die before the first record exists.
	if *n <= 0 {
		return fmt.Errorf("-n %d is not a generatable record count (need >= 1); usage: mctrace gen -app name -n count [-o file]", *n)
	}
	if err := checkWritableFile("-o", *outPath); err != nil {
		return err
	}
	var prof workload.Profile
	var err error
	if *profPath != "" {
		prof, err = workload.LoadProfileFile(*profPath)
	} else {
		prof, err = workload.ProfileByName(*app)
	}
	if err != nil {
		return err
	}

	phaseLen := uint64(0)
	if prof.Phases > 1 {
		phaseLen = uint64(*n / prof.Phases)
	}
	gen, err := workload.NewGenerator(prof, *seed, phaseLen)
	if err != nil {
		return err
	}
	src := trace.NewLimitSource(gen, *n)

	if *text {
		var w io.Writer = out
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		written, err := trace.WriteText(w, src)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mctrace: wrote %d text records\n", written)
		return nil
	}

	var tw *trace.Writer
	if *outPath != "" {
		// CreateFile handles transparent gzip for .gz paths.
		w, closer, err := trace.CreateFile(*outPath)
		if err != nil {
			return err
		}
		defer closer.Close()
		tw = w
	} else {
		tw = trace.NewWriter(out)
		defer tw.Flush()
	}
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		if err := tw.Write(a); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mctrace: wrote %d records\n", tw.Count())
	return nil
}

// checkWritableFile proves an output path can actually receive a file
// before any generation starts: its directory must exist and admit a
// probe file (created and removed). An empty path (stdout) passes.
func checkWritableFile(flagName, path string) error {
	if path == "" {
		return nil
	}
	dir := filepath.Dir(path)
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return fmt.Errorf("%s: %s is not writable: %w", flagName, path, err)
	}
	name := probe.Name()
	probe.Close()
	return os.Remove(name)
}

func openTrace(path string) (io.Closer, *trace.Reader, error) {
	r, closer, err := trace.OpenFile(path)
	if err != nil {
		return nil, nil, err
	}
	return closer, r, nil
}

func infoCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mctrace info <file>")
	}
	f, r, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	s := trace.Summarize(r)
	if r.Err() != nil {
		return r.Err()
	}
	tb := report.NewTable("trace "+fs.Arg(0), "metric", "value")
	tb.AddRow("records", fmt.Sprint(s.Records))
	tb.AddRow("instructions", fmt.Sprint(s.Instructions))
	tb.AddRow("kernel share", report.Pct(s.KernelShare()))
	tb.AddRow("write share", report.Pct(s.WriteShare()))
	tb.AddRow("loads", fmt.Sprint(s.ByOp[trace.Load]))
	tb.AddRow("stores", fmt.Sprint(s.ByOp[trace.Store]))
	tb.AddRow("ifetches", fmt.Sprint(s.ByOp[trace.Ifetch]))
	tb.AddRow("address range", fmt.Sprintf("%#x .. %#x", s.MinAddr, s.MaxAddr))
	return tb.Fprint(out)
}

func catCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("cat", flag.ContinueOnError)
	n := fs.Int("n", 0, "max records to print (0 = all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 0 {
		return fmt.Errorf("-n %d is negative; usage: mctrace cat [-n count] <file>", *n)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: mctrace cat [-n count] <file>")
	}
	f, r, err := openTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	var src trace.Source = r
	if *n > 0 {
		src = trace.NewLimitSource(r, *n)
	}
	if _, err := trace.WriteText(out, src); err != nil {
		return err
	}
	return r.Err()
}
