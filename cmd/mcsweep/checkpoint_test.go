package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mobilecache/internal/checkpoint"
	"mobilecache/internal/sim"
)

// TestFlagValidationFailsFast: nonsensical harness settings must be
// rejected before any cell runs, not silently clamped or hung on.
func TestFlagValidationFailsFast(t *testing.T) {
	spec := writeSpec(t, `{
		"machines": ["baseline-sram"],
		"apps": ["music"],
		"seeds": [1],
		"accesses": 1000
	}`)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero-jobs", []string{"-jobs", "0"}, "-jobs"},
		{"negative-jobs", []string{"-jobs", "-4"}, "-jobs"},
		{"negative-timeout", []string{"-timeout", "-1s"}, "-timeout"},
		{"negative-retries", []string{"-retries", "-1"}, "-retries"},
		{"negative-trace-cache", []string{"-trace-cache-mb", "-1"}, "-trace-cache-mb"},
		{"resume-without-checkpoint", []string{"-resume"}, "-resume"},
		{"bad-audit-mode", []string{"-audit", "loud"}, "-audit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"-spec", spec}, tc.args...)
			err := run(args, io.Discard, io.Discard)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name the bad flag %q", err, tc.want)
			}
		})
	}
}

// journalReports decodes a checkpoint journal into key -> report.
func journalReports(t *testing.T, path string) map[checkpoint.Key]sim.RunReport {
	t.Helper()
	entries, info, err := checkpoint.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.DiscardedBytes != 0 {
		t.Fatalf("journal %s has %d corrupt bytes", path, info.DiscardedBytes)
	}
	out := make(map[checkpoint.Key]sim.RunReport, len(entries))
	for _, e := range entries {
		var rep sim.RunReport
		if err := json.Unmarshal(e.Data, &rep); err != nil {
			t.Fatal(err)
		}
		out[e.Key] = rep
	}
	return out
}

// TestCheckpointKillAndResume is the PR's end-to-end acceptance test:
// a sweep that dies partway (chaos-injected failures standing in for a
// kill) leaves a journal; resuming completes only the missing cells
// and the combined results are identical — byte-identical CSV, deeply
// equal reports — to a sweep that never died.
func TestCheckpointKillAndResume(t *testing.T) {
	spec := writeSpec(t, `{
		"machines": ["baseline-sram", "sp-mr"],
		"apps": ["music"],
		"seeds": [1, 2, 3, 4],
		"accesses": 20000
	}`)
	dir := t.TempDir()
	refCk := filepath.Join(dir, "ref.ckpt")
	ck := filepath.Join(dir, "sweep.ckpt")

	// Reference: uninterrupted run.
	var refCSV bytes.Buffer
	if err := run([]string{"-spec", spec, "-jobs", "2", "-checkpoint", refCk}, &refCSV, io.Discard); err != nil {
		t.Fatal(err)
	}
	refReports := journalReports(t, refCk)
	if len(refReports) != 8 {
		t.Fatalf("reference journal has %d entries, want 8", len(refReports))
	}

	// "Killed" run: chaos fails a subset of cells permanently; the
	// journal captures exactly the cells that completed.
	restore := sim.InstallChaos(&sim.Chaos{ErrorRate: 0.4, Seed: 4})
	err := run([]string{"-spec", spec, "-jobs", "2", "-keep-going", "-checkpoint", ck}, io.Discard, io.Discard)
	restore()
	if err == nil {
		t.Fatal("chaos run reported no failures; pick a chaos seed that kills some cells")
	}
	partial := journalReports(t, ck)
	if len(partial) == 0 || len(partial) >= 8 {
		t.Fatalf("partial journal has %d entries; need a strict subset to make resume meaningful", len(partial))
	}

	// Resume: only the lost cells re-run; the rest replay from disk.
	var resCSV, resErr bytes.Buffer
	if err := run([]string{"-spec", spec, "-jobs", "2", "-checkpoint", ck, "-resume"}, &resCSV, &resErr); err != nil {
		t.Fatalf("resume failed: %v\n%s", err, resErr.String())
	}
	if !strings.Contains(resErr.String(), fmt.Sprintf("%d resumed", len(partial))) {
		t.Fatalf("summary does not report %d resumed cells:\n%s", len(partial), resErr.String())
	}

	// The resumed sweep's CSV is byte-identical to the uninterrupted one.
	if !bytes.Equal(resCSV.Bytes(), refCSV.Bytes()) {
		t.Fatalf("resumed CSV diverges from uninterrupted CSV:\n--- resumed ---\n%s--- reference ---\n%s",
			resCSV.String(), refCSV.String())
	}

	// And the journal now holds all 8 reports, deeply equal to the
	// uninterrupted run's.
	combined := journalReports(t, ck)
	if !reflect.DeepEqual(combined, refReports) {
		t.Fatal("combined journal reports differ from uninterrupted run")
	}
}

// TestResumeDiscardsTornTail: a journal cut mid-record (a real kill,
// not a clean failure) must resume from the valid prefix, report the
// discard, and still converge to the full result set.
func TestResumeDiscardsTornTail(t *testing.T) {
	spec := writeSpec(t, `{
		"machines": ["baseline-sram"],
		"apps": ["music"],
		"seeds": [1, 2, 3],
		"accesses": 20000
	}`)
	ck := filepath.Join(t.TempDir(), "sweep.ckpt")
	if err := run([]string{"-spec", spec, "-checkpoint", ck}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: the classic torn write of a kill -9.
	if err := os.WriteFile(ck, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if err := run([]string{"-spec", spec, "-checkpoint", ck, "-resume"}, &out, &errOut); err != nil {
		t.Fatalf("resume over torn tail failed: %v", err)
	}
	if !strings.Contains(errOut.String(), "discarded") {
		t.Fatalf("summary does not mention the discarded tail:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "2 resumed") {
		t.Fatalf("want 2 resumed cells (third was torn):\n%s", errOut.String())
	}
	if got := journalReports(t, ck); len(got) != 3 {
		t.Fatalf("journal after resume holds %d reports, want 3", len(got))
	}
}

// TestStrictAuditViolationsInManifest: a miscounted report must
// surface as a structured invariant failure in the manifest — the
// audit layer's end-to-end promise.
func TestStrictAuditViolationsInManifest(t *testing.T) {
	restoreTamper := sim.SetAuditTamper(func(r *sim.RunReport) {
		r.L2.Hits[0]++ // silently lose the conservation law
	})
	t.Cleanup(restoreTamper)

	spec := writeSpec(t, `{
		"machines": ["baseline-sram"],
		"apps": ["music"],
		"seeds": [1, 2],
		"accesses": 10000
	}`)
	manifestPath := filepath.Join(t.TempDir(), "failures.json")
	err := run([]string{"-spec", spec, "-audit", "strict", "-keep-going", "-failures-out", manifestPath},
		io.Discard, io.Discard)
	if err == nil {
		t.Fatal("strict audit let a miscounted sweep pass")
	}

	data, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Failed []struct {
			Machine    string   `json:"machine"`
			Violations []string `json:"violations"`
		} `json:"failed"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Failed) != 2 {
		t.Fatalf("manifest has %d failures, want 2", len(m.Failed))
	}
	for _, f := range m.Failed {
		if len(f.Violations) == 0 || !strings.Contains(f.Violations[0], "l2.conservation") {
			t.Fatalf("failure lacks structured violations: %+v", f)
		}
	}

	// With -audit off the same tampered sweep passes: the flag gates it.
	if err := run([]string{"-spec", spec, "-audit", "off"}, io.Discard, io.Discard); err != nil {
		t.Fatalf("-audit off still failed: %v", err)
	}
}
