package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mobilecache/internal/checkpoint"
)

// TestSigintFlushesJournalAndSuggestsResume delivers a real SIGINT to
// the process mid-sweep: the run must stop, leave a clean (fsynced,
// untorn) journal of every completed cell, exit with an error naming
// -resume — and the resumed run must converge to a CSV byte-identical
// to an uninterrupted sweep.
func TestSigintFlushesJournalAndSuggestsResume(t *testing.T) {
	spec := writeSpec(t, `{
		"machines": ["baseline-sram", "sp-mr", "dp-sr"],
		"apps": ["browser", "music"],
		"seeds": [1, 2, 3, 4],
		"accesses": 150000
	}`)
	dir := t.TempDir()
	ck := filepath.Join(dir, "sweep.ckpt")
	out := filepath.Join(dir, "out.csv")

	errCh := make(chan error, 1)
	var errOut bytes.Buffer
	go func() {
		errCh <- run([]string{"-spec", spec, "-jobs", "2", "-checkpoint", ck, "-o", out}, io.Discard, &errOut)
	}()

	// Wait for at least one journaled cell, then interrupt ourselves.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no cell was journaled before the deadline")
		}
		if entries, _, err := checkpoint.Read(ck); err == nil && len(entries) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}

	var runErr error
	select {
	case runErr = <-errCh:
	case <-time.After(60 * time.Second):
		t.Fatal("interrupted sweep did not return")
	}
	if runErr == nil {
		// The sweep finished before the signal landed — the interruption
		// path was not exercised; the spec above must be big enough that
		// this cannot happen on any realistic machine.
		t.Fatal("sweep completed before SIGINT; grow the spec")
	}
	if !strings.Contains(runErr.Error(), "-resume") {
		t.Fatalf("interrupted run error %q does not point at -resume", runErr)
	}

	// The journal survived the interrupt clean: a valid prefix with no
	// corrupt tail, holding a strict subset of the grid.
	entries, info, err := checkpoint.Read(ck)
	if err != nil {
		t.Fatal(err)
	}
	if info.DiscardedBytes != 0 {
		t.Fatalf("journal has %d corrupt bytes after SIGINT; the shutdown path must fsync complete frames only", info.DiscardedBytes)
	}
	if len(entries) == 0 {
		t.Fatal("journal is empty after SIGINT")
	}

	// Resume completes the sweep; the CSV matches an uninterrupted run.
	var resumed, reference bytes.Buffer
	if err := run([]string{"-spec", spec, "-jobs", "2", "-checkpoint", ck, "-resume"}, &resumed, io.Discard); err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if err := run([]string{"-spec", spec, "-jobs", "2"}, &reference, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed.Bytes(), reference.Bytes()) {
		t.Fatalf("resumed CSV diverges from uninterrupted run:\n--- resumed ---\n%s--- reference ---\n%s",
			resumed.String(), reference.String())
	}
}
