package main

// Golden equivalence tests for the internal/engine refactor: the
// engine-backed mcsweep must produce byte-identical CSV output to the
// pre-refactor execution path. referenceSweepCSV below IS that old
// path, hand-wired exactly as cmd/mcsweep used to do it — a direct
// tracestore + runner + sim composition with inline CSV rendering —
// so any drift in row content, formatting, ordering or header shows up
// as a byte diff.

import (
	"bytes"
	"context"
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mobilecache/internal/runner"
	"mobilecache/internal/sim"
	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

// quickSpec is the equivalence matrix: every standard machine x the
// first three app profiles x one seed.
func quickSpec(t *testing.T) (Spec, string) {
	t.Helper()
	apps := workload.Profiles()[:3]
	names := make([]string, len(apps))
	for i, a := range apps {
		names[i] = a.Name
	}
	spec := Spec{
		Machines: sim.StandardMachineNames(),
		Apps:     names,
		Seeds:    []uint64{1},
		Accesses: 6000,
	}
	b, err := os.CreateTemp(t.TempDir(), "spec*.json")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(b, `{"machines":[%s],"apps":[%s],"seeds":[1],"accesses":%d}`,
		`"`+strings.Join(spec.Machines, `","`)+`"`,
		`"`+strings.Join(spec.Apps, `","`)+`"`,
		spec.Accesses)
	b.Close()
	return spec, b.Name()
}

// referenceSweepCSV renders the spec's grid exactly the way mcsweep
// did before the engine refactor: a shared trace arena, the runner
// worker pool over (machine, app, seed) cells in spec order, and the
// CSV schema with identical formatting verbs.
func referenceSweepCSV(t *testing.T, spec Spec, rcfg runner.Config) []byte {
	t.Helper()
	store := tracestore.New(0)

	type resolved struct {
		machine string
		app     workload.Profile
		seed    uint64
	}
	var cells []resolved
	var rcells []runner.Cell
	index := map[runner.Cell]int{}
	for _, mName := range spec.Machines {
		for _, aName := range spec.Apps {
			prof, err := workload.ProfileByName(aName)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range spec.Seeds {
				rc := runner.Cell{Machine: mName, App: prof.Name, Seed: seed}
				index[rc] = len(cells)
				cells = append(cells, resolved{machine: mName, app: prof, seed: seed})
				rcells = append(rcells, rc)
			}
		}
	}

	outcomes, err := runner.Run(context.Background(), rcfg, rcells,
		func(_ context.Context, rc runner.Cell) (sim.RunReport, error) {
			c := cells[index[rc]]
			cfg, err := sim.MachineByName(c.machine)
			if err != nil {
				return sim.RunReport{}, err
			}
			if spec.Warmup > 0 {
				return sim.RunWarmWorkloadFrom(store, cfg, c.app, c.seed, spec.Warmup, spec.Accesses)
			}
			return sim.RunWorkloadFrom(store, cfg, c.app, c.seed, spec.Accesses)
		})
	if err != nil && !rcfg.KeepGoing {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write([]string{
		"machine", "app", "seed", "accesses",
		"ipc", "l2_missrate", "l2_kernel_share",
		"l2_read_j", "l2_write_j", "l2_leakage_j", "l2_refresh_j", "l2_total_j",
		"dram_reads", "dram_writes", "hierarchy_total_j",
		"l2_powered_bytes",
	}); err != nil {
		t.Fatal(err)
	}
	for i, o := range outcomes {
		if o.Err != nil {
			continue
		}
		rep := o.Value
		bd := rep.Energy.L2
		cfg, err := sim.MachineByName(cells[i].machine)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write([]string{
			cfg.Name, cells[i].app.Name, strconv.FormatUint(cells[i].seed, 10),
			strconv.FormatUint(rep.CPU.Accesses, 10),
			fmt.Sprintf("%.6f", rep.IPC()),
			fmt.Sprintf("%.6f", rep.L2.MissRate()),
			fmt.Sprintf("%.6f", rep.L2.KernelShare()),
			fmt.Sprintf("%.6g", bd.ReadJ),
			fmt.Sprintf("%.6g", bd.WriteJ),
			fmt.Sprintf("%.6g", bd.LeakageJ),
			fmt.Sprintf("%.6g", bd.RefreshJ),
			fmt.Sprintf("%.6g", bd.Total()),
			strconv.FormatUint(rep.DRAMReads, 10),
			strconv.FormatUint(rep.DRAMWrites, 10),
			fmt.Sprintf("%.6g", rep.Energy.TotalJ()),
			strconv.FormatUint(rep.L2PoweredBytes, 10),
		}); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenEquivalencePlainSweep: the refactored mcsweep CSV is
// byte-identical to the pre-refactor path on the quick standard-machine
// x 3-app matrix, at both serial and parallel worker counts.
func TestGoldenEquivalencePlainSweep(t *testing.T) {
	spec, specPath := quickSpec(t)
	want := referenceSweepCSV(t, spec, runner.Config{Workers: 4})

	for _, jobs := range []string{"1", "8"} {
		var out, errOut bytes.Buffer
		if err := run([]string{"-spec", specPath, "-jobs", jobs}, &out, &errOut); err != nil {
			t.Fatalf("jobs=%s: %v\nstderr: %s", jobs, err, errOut.String())
		}
		if !bytes.Equal(out.Bytes(), want) {
			t.Fatalf("jobs=%s: engine-backed CSV diverges from the pre-refactor reference\ngot:\n%s\nwant:\n%s",
				jobs, out.String(), want)
		}
	}
}

// TestGoldenEquivalenceKeepGoingChaos: under injected failures with
// -keep-going, the healthy rows are byte-identical to the pre-refactor
// keep-going path run under the same chaos.
func TestGoldenEquivalenceKeepGoingChaos(t *testing.T) {
	spec, specPath := quickSpec(t)
	chaos := &sim.Chaos{ErrorRate: 0.3, Seed: 11}

	restore := sim.InstallChaos(chaos)
	want := referenceSweepCSV(t, spec, runner.Config{Workers: 4, KeepGoing: true})
	restore()
	if bytes.Count(want, []byte("\n")) == 1+len(spec.Machines)*len(spec.Apps) {
		t.Fatal("chaos failed no cells; the keep-going path is untested")
	}

	restore = sim.InstallChaos(chaos)
	defer restore()
	var out, errOut bytes.Buffer
	err := run([]string{"-spec", specPath, "-jobs", "4", "-keep-going"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "cells failed") {
		t.Fatalf("keep-going sweep with failures returned %v, want a cells-failed error", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatalf("keep-going CSV diverges from the pre-refactor reference\ngot:\n%s\nwant:\n%s",
			out.String(), want)
	}
}

// TestGoldenEquivalenceResumedAuditedSweep is the acceptance scenario:
// a chaos-wounded, checkpointed, keep-going, strict-audited sweep that
// is then resumed without chaos must produce a final CSV byte-identical
// to the pre-refactor path running uninterrupted.
func TestGoldenEquivalenceResumedAuditedSweep(t *testing.T) {
	spec, specPath := quickSpec(t)
	want := referenceSweepCSV(t, spec, runner.Config{Workers: 4})
	ck := filepath.Join(t.TempDir(), "sweep.ckpt")

	restore := sim.InstallChaos(&sim.Chaos{ErrorRate: 0.3, Seed: 11})
	var out1, errOut1 bytes.Buffer
	err := run([]string{"-spec", specPath, "-jobs", "4", "-keep-going", "-audit", "strict",
		"-checkpoint", ck}, &out1, &errOut1)
	restore()
	if err == nil {
		t.Fatal("wounded sweep reported success; chaos failed no cells")
	}
	if !strings.Contains(errOut1.String(), "checkpoint:") {
		t.Fatalf("no checkpoint summary on stderr:\n%s", errOut1.String())
	}

	var out2, errOut2 bytes.Buffer
	err = run([]string{"-spec", specPath, "-jobs", "4", "-keep-going", "-audit", "strict",
		"-checkpoint", ck, "-resume"}, &out2, &errOut2)
	if err != nil {
		t.Fatalf("resumed sweep failed: %v\nstderr: %s", err, errOut2.String())
	}
	if !bytes.Equal(out2.Bytes(), want) {
		t.Fatalf("resumed sweep CSV diverges from the uninterrupted pre-refactor reference\ngot:\n%s\nwant:\n%s",
			out2.String(), want)
	}
	if !strings.Contains(errOut2.String(), "resumed") {
		t.Fatalf("resume summary missing from stderr:\n%s", errOut2.String())
	}
}
