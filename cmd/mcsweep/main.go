// mcsweep runs a batch of (machine, app, seed) simulations described
// by a JSON spec and emits one CSV row per run — the bulk-experiment
// front end for custom studies. The grid itself is executed by the
// shared pipeline layer (internal/engine), which composes the bounded
// fault-containing worker pool, the shared trace arena, the crash-safe
// checkpoint journal and the invariant audit; mcsweep is spec parsing
// plus engine wiring.
//
// Usage:
//
//	mcsweep -spec sweep.json [-o results.csv]
//	mcsweep -spec sweep.json -jobs 8 -timeout 5m -retries 2 \
//	        -keep-going -failures-out failed.json
//	mcsweep -spec sweep.json -checkpoint sweep.ckpt           # journal cells
//	mcsweep -spec sweep.json -checkpoint sweep.ckpt -resume   # skip done cells
//	mcsweep -dump-spec          # print a starting-point spec
//
// Spec format:
//
//	{
//	  "machines": ["baseline-sram", "sp-mr", "my-machine.json"],
//	  "apps": ["browser", "music"],
//	  "seeds": [1, 2, 3],
//	  "accesses": 400000,
//	  "warmup": 0
//	}
//
// Machine entries name standard schemes, or point at config JSON files
// when they are not a scheme name. A positive warmup measures only the
// accesses after the warmup prefix.
//
// Rows appear in spec order (machines x apps x seeds) regardless of
// -jobs, so identical specs produce byte-identical CSVs. With
// -keep-going a sweep with failures still exits non-zero, after
// writing every healthy row and the failure manifest.
//
// -checkpoint journals every completed cell's report to a crash-safe
// append-only file (internal/checkpoint), keyed by a content hash of
// the cell's full inputs (machine config, workload profile, seed,
// access counts). -resume replays the journal's valid prefix — a
// truncated or corrupt tail from a crash is detected, reported and
// discarded, never trusted — and skips every cell whose key matches,
// so a killed multi-hour sweep continues where it stopped. Because
// keys hash contents rather than spec positions, editing or reordering
// the spec only re-runs cells whose inputs actually changed.
//
// -audit selects the invariant-audit mode (internal/invariant) for
// every simulation: "warn" (default) logs conservation violations,
// "strict" turns them into structured failures in the manifest, "off"
// disables checking.
//
// -sample runs every cell set-sampled (internal/sample): "1/8"
// simulates one in eight cache-set groups and scales the report back
// to a full-cache estimate; "hash:1/8" picks the groups by address
// hash instead of low set bits. The spec is part of each cell's
// content key, so sampled and exact cells never alias in the run memo
// or a checkpoint journal. Error bounds are documented in
// EXPERIMENTS.md; validate a spec with mcbench -sample-validate.
//
// All cells of a sweep share one trace arena (internal/tracestore):
// rows that repeat an (app, seed) pair across machines replay the
// cached packed trace instead of regenerating it. -trace-cache-mb
// bounds the arena's memory; the end-of-sweep summary on stderr
// reports, manifest-style, how many cells ran and how the arena
// performed (generated/hits/evictions). -cpuprofile and -memprofile
// write pprof profiles for performance work on the sweep engine.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mobilecache/internal/engine"
	"mobilecache/internal/faultfs"
	"mobilecache/internal/profiling"
	"mobilecache/internal/runner"
	"mobilecache/internal/sample"
	"mobilecache/internal/workload"
)

// Spec describes one sweep.
type Spec struct {
	Machines []string `json:"machines"`
	Apps     []string `json:"apps"`
	Seeds    []uint64 `json:"seeds"`
	Accesses int      `json:"accesses"`
	Warmup   int      `json:"warmup"`
}

// Validate reports spec errors.
func (s Spec) Validate() error {
	if len(s.Machines) == 0 {
		return fmt.Errorf("mcsweep: spec needs machines")
	}
	if len(s.Apps) == 0 {
		return fmt.Errorf("mcsweep: spec needs apps")
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("mcsweep: spec needs seeds")
	}
	if s.Accesses <= 0 {
		return fmt.Errorf("mcsweep: accesses must be positive")
	}
	if s.Warmup < 0 {
		return fmt.Errorf("mcsweep: negative warmup")
	}
	return nil
}

func defaultSpec() Spec {
	return Spec{
		Machines: []string{"baseline-sram", "sp-mr", "dp-sr"},
		Apps:     []string{"browser", "music"},
		Seeds:    []uint64{1, 2},
		Accesses: 200_000,
	}
}

// options collects the harness knobs.
type options struct {
	jobs           int
	timeout        time.Duration
	retries        int
	keepGoing      bool
	failuresOut    string
	traceCacheMB   int
	checkpointPath string
	resume         bool
	audit          string
	sampleArg      string
	sample         sample.Spec
	segWorkers     int
	segWarmup      int
	// fs, when non-nil, replaces the filesystem under the checkpoint
	// journal and failure manifest (fault-injection tests only).
	fs faultfs.FS
}

// validate rejects nonsensical harness settings up front — a sweep
// that would hang on zero workers or silently clamp a negative
// deadline must fail before any cell runs. A malformed -sample spec
// (zero, negative, or a non-power-of-two factor) is rejected here for
// the same reason: sampling silently off — or at a factor the sampler
// cannot index — would produce a sweep the operator did not ask for.
func (o *options) validate() error {
	if o.jobs < 1 {
		return fmt.Errorf("-jobs %d is not a runnable worker count (need >= 1)", o.jobs)
	}
	if o.timeout < 0 {
		return fmt.Errorf("-timeout %v is negative; use 0 to disable the per-cell deadline", o.timeout)
	}
	if o.retries < 0 {
		return fmt.Errorf("-retries %d is negative; use 0 to disable retries", o.retries)
	}
	if o.traceCacheMB < 0 {
		return fmt.Errorf("-trace-cache-mb %d is negative; use 0 for an unlimited arena", o.traceCacheMB)
	}
	if o.resume && o.checkpointPath == "" {
		return fmt.Errorf("-resume needs -checkpoint to name the journal to resume from")
	}
	if err := engine.CheckAudit(o.audit); err != nil {
		return fmt.Errorf("-audit: %w", err)
	}
	if o.sampleArg != "" {
		spec, err := sample.Parse(o.sampleArg)
		if err != nil {
			return fmt.Errorf("-sample: %w", err)
		}
		o.sample = spec
	}
	if o.segWorkers < 0 {
		return fmt.Errorf("-segment-workers %d is negative; use 0 or 1 for serial cells", o.segWorkers)
	}
	if o.segWorkers > 1 && o.sampleArg != "" {
		return fmt.Errorf("-segment-workers does not compose with -sample")
	}
	return nil
}

// exitIOFault is the exit code for storage faults (ENOSPC, EIO, torn
// writes): the sweep's journaled work is intact and a -resume rerun
// completes it once the disk recovers — unlike exit 1, which covers
// configuration and simulation failures a rerun will hit again.
const exitIOFault = 3

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mcsweep:", err)
		if faultfs.IsIOFault(err) {
			os.Exit(exitIOFault)
		}
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("mcsweep", flag.ContinueOnError)
	specPath := fs.String("spec", "", "sweep spec JSON file")
	outPath := fs.String("o", "", "output CSV file (default stdout)")
	dump := fs.Bool("dump-spec", false, "print a starting-point spec and exit")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile here")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile here")
	var opt options
	fs.IntVar(&opt.jobs, "jobs", runtime.GOMAXPROCS(0), "parallel cells")
	fs.DurationVar(&opt.timeout, "timeout", 0, "per-cell deadline (0 = none)")
	fs.IntVar(&opt.retries, "retries", 0, "retries per cell for transient failures")
	fs.BoolVar(&opt.keepGoing, "keep-going", false, "record failed cells and finish the sweep (still exits non-zero)")
	fs.StringVar(&opt.failuresOut, "failures-out", "", "write the failure manifest JSON here (incrementally, then finalized)")
	fs.IntVar(&opt.traceCacheMB, "trace-cache-mb", 256, "trace arena LRU budget in MB (0 = unlimited)")
	fs.StringVar(&opt.checkpointPath, "checkpoint", "", "journal completed cells to this crash-safe file")
	fs.BoolVar(&opt.resume, "resume", false, "skip cells already completed in the -checkpoint journal")
	fs.StringVar(&opt.audit, "audit", "warn", "invariant audit mode: off, warn or strict")
	fs.StringVar(&opt.sampleArg, "sample", "", `set-sampling spec, e.g. "1/8" or "hash:1/8" (default: exact simulation)`)
	fs.IntVar(&opt.segWorkers, "segment-workers", 0, "split every cell's replay into this many concurrent segments (0/1 = serial; multiplies with -jobs)")
	fs.IntVar(&opt.segWarmup, "segment-warmup", 0, "per-segment warmup records for -segment-workers (0 = default, <0 = exact full-prefix oracle)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *dump {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(defaultSpec())
	}
	if *specPath == "" {
		return fmt.Errorf("need -spec (or -dump-spec)")
	}
	if err := opt.validate(); err != nil {
		return err
	}
	spec, err := loadSpec(*specPath)
	if err != nil {
		return err
	}

	restoreAudit, err := engine.ApplyAudit(opt.audit)
	if err != nil {
		return err
	}
	defer restoreAudit()

	stopProfile, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}

	// -o goes through the atomic CSVFile sink: rows accumulate in
	// memory and land via write-temp/fsync/rename/dirsync, so the
	// output path never holds a half-written CSV and a full disk
	// surfaces as an error instead of a truncated file.
	var sink engine.Sink = engine.NewCSV(out)
	if *outPath != "" {
		sink = engine.NewCSVFile(*outPath)
	}
	// A SIGINT/SIGTERM cancels the sweep context: dispatch stops, the
	// journal and manifest are flushed and fsynced as the engine
	// unwinds, and the run exits non-zero pointing at -resume. A second
	// signal falls back to the default disposition and kills
	// immediately.
	ctx, stopSignals := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stopSignals()
	context.AfterFunc(ctx, stopSignals)

	sweepErr := sweep(ctx, spec, opt, sink, errOut)
	if perr := stopProfile(); perr != nil && sweepErr == nil {
		sweepErr = perr
	}
	return sweepErr
}

// loadSpec reads, fully parses and validates the spec file. Trailing
// data after the JSON object (a concatenated second spec, an editing
// accident) is rejected: silently ignoring it would run a different
// sweep than the file describes.
func loadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	var spec Spec
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("decoding spec: %w", err)
	}
	if tok, err := dec.Token(); err != io.EOF {
		return Spec{}, fmt.Errorf("spec %s: trailing data after the spec object (next token %v, err %v)", path, tok, err)
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// plan resolves the spec into an engine.Plan. Every machine and app is
// resolved up front: a typo in the spec is a configuration error and
// should fail the whole sweep immediately, not burn through N-1
// healthy cells first.
func plan(spec Spec) (engine.Plan, error) {
	machines := make([]engine.MachineSpec, 0, len(spec.Machines))
	for _, entry := range spec.Machines {
		cfg, err := engine.ResolveMachine(entry)
		if err != nil {
			return engine.Plan{}, err
		}
		machines = append(machines, engine.MachineSpec{Label: entry, Config: cfg})
	}
	apps := make([]workload.Profile, 0, len(spec.Apps))
	for _, appName := range spec.Apps {
		prof, err := workload.ProfileByName(appName)
		if err != nil {
			return engine.Plan{}, err
		}
		apps = append(apps, prof)
	}
	return engine.Grid(machines, apps, spec.Seeds, spec.Accesses, spec.Warmup), nil
}

// sweep executes the spec's grid on the engine and renders the CSV,
// the stderr summary and the exit status.
func sweep(ctx context.Context, spec Spec, opt options, sink engine.Sink, errOut io.Writer) error {
	p, err := plan(spec)
	if err != nil {
		return err
	}
	p.Sample = opt.sample

	eng := engine.New(engine.Config{
		Workers:          opt.jobs,
		Timeout:          opt.timeout,
		Retries:          opt.retries,
		KeepGoing:        opt.keepGoing,
		TraceBudgetBytes: engine.TraceBudgetMB(opt.traceCacheMB),
	})
	sum, runErr := eng.Execute(ctx, p, engine.ExecOptions{
		CheckpointPath: opt.checkpointPath,
		Resume:         opt.resume,
		FailuresPath:   opt.failuresOut,
		Log:            errOut,
		FS:             opt.fs,
		SegmentWorkers: opt.segWorkers,
		SegmentWarmup:  opt.segWarmup,
	}, sink)

	if runErr != nil && sum.Manifest.TotalCells == 0 {
		// Setup failed before any cell ran (unopenable journal or
		// manifest, unkeyable cell): no summary to report.
		return runErr
	}

	fmt.Fprintf(errOut,
		"sweep: %d cells (%d ok, %d failed, %d resumed, %d memoized); %s\n",
		sum.Manifest.TotalCells, sum.Manifest.Succeeded, len(sum.Manifest.Failed), sum.Resumed,
		sum.Memoized, engine.CacheSummary(sum.Memo, sum.Store))
	if opt.checkpointPath != "" {
		fmt.Fprintf(errOut, "checkpoint: %d cells appended to %s (%d resumed, %d corrupt bytes discarded)\n",
			sum.CheckpointAppended, opt.checkpointPath, sum.Resumed, sum.CheckpointDiscarded)
	}

	if runErr != nil {
		if errors.Is(runErr, context.Canceled) {
			// Interrupted by a signal: everything completed so far is on
			// disk (the engine fsyncs the journal and manifest as it
			// unwinds), so tell the operator how to continue instead of
			// dumping a cancellation backtrace.
			if opt.checkpointPath != "" {
				return fmt.Errorf("interrupted; completed cells are journaled — rerun with -resume to continue from %s", opt.checkpointPath)
			}
			return fmt.Errorf("interrupted; rerun with -checkpoint and -resume to make sweeps continuable")
		}
		if faultfs.IsIOFault(runErr) {
			// Storage fault, not a simulation failure: the journal's
			// fsynced prefix is intact, so point the operator at -resume
			// (and exit with the distinct I/O-fault code via main).
			if opt.checkpointPath != "" {
				return fmt.Errorf("storage fault: %w; completed cells are journaled in %s — rerun with -resume once the disk recovers",
					runErr, opt.checkpointPath)
			}
			return fmt.Errorf("storage fault: %w; rerun with -checkpoint and -resume to make sweeps continuable past storage faults", runErr)
		}
		var re *runner.RunError
		if errors.As(runErr, &re) {
			return fmt.Errorf("sweep aborted (rerun with -keep-going to finish the healthy cells): %w", re)
		}
		return runErr
	}
	if n := len(sum.Manifest.Failed); n > 0 {
		return fmt.Errorf("%d of %d cells failed (see failure manifest%s)", n, sum.Manifest.TotalCells, manifestHint(opt.failuresOut))
	}
	return nil
}

func manifestHint(path string) string {
	if path == "" {
		return "; pass -failures-out to save it"
	}
	return " in " + path
}
