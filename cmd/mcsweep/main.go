// mcsweep runs a batch of (machine, app, seed) simulations described
// by a JSON spec and emits one CSV row per run — the bulk-experiment
// front end for custom studies. Cells run in parallel on a bounded,
// fault-containing worker pool (internal/runner): a panicking or
// erroring cell is recorded — with -keep-going, in a failure manifest
// — while the rest of the sweep completes and emits its partial CSV.
//
// Usage:
//
//	mcsweep -spec sweep.json [-o results.csv]
//	mcsweep -spec sweep.json -jobs 8 -timeout 5m -retries 2 \
//	        -keep-going -failures-out failed.json
//	mcsweep -spec sweep.json -checkpoint sweep.ckpt           # journal cells
//	mcsweep -spec sweep.json -checkpoint sweep.ckpt -resume   # skip done cells
//	mcsweep -dump-spec          # print a starting-point spec
//
// Spec format:
//
//	{
//	  "machines": ["baseline-sram", "sp-mr", "my-machine.json"],
//	  "apps": ["browser", "music"],
//	  "seeds": [1, 2, 3],
//	  "accesses": 400000,
//	  "warmup": 0
//	}
//
// Machine entries name standard schemes, or point at config JSON files
// when they are not a scheme name. A positive warmup measures only the
// accesses after the warmup prefix.
//
// Rows appear in spec order (machines x apps x seeds) regardless of
// -jobs, so identical specs produce byte-identical CSVs. With
// -keep-going a sweep with failures still exits non-zero, after
// writing every healthy row and the failure manifest.
//
// -checkpoint journals every completed cell's report to a crash-safe
// append-only file (internal/checkpoint), keyed by a content hash of
// the cell's full inputs (machine config, workload profile, seed,
// access counts). -resume replays the journal's valid prefix — a
// truncated or corrupt tail from a crash is detected, reported and
// discarded, never trusted — and skips every cell whose key matches,
// so a killed multi-hour sweep continues where it stopped. Because
// keys hash contents rather than spec positions, editing or reordering
// the spec only re-runs cells whose inputs actually changed.
//
// -audit selects the invariant-audit mode (internal/invariant) for
// every simulation: "warn" (default) logs conservation violations,
// "strict" turns them into structured failures in the manifest, "off"
// disables checking.
//
// All cells of a sweep share one trace arena (internal/tracestore):
// rows that repeat an (app, seed) pair across machines replay the
// cached packed trace instead of regenerating it. -trace-cache-mb
// bounds the arena's memory; the end-of-sweep summary on stderr
// reports, manifest-style, how many cells ran and how the arena
// performed (generated/hits/evictions). -cpuprofile and -memprofile
// write pprof profiles for performance work on the sweep engine.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"mobilecache/internal/checkpoint"
	"mobilecache/internal/config"
	"mobilecache/internal/invariant"
	"mobilecache/internal/runner"
	"mobilecache/internal/sim"
	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

// Spec describes one sweep.
type Spec struct {
	Machines []string `json:"machines"`
	Apps     []string `json:"apps"`
	Seeds    []uint64 `json:"seeds"`
	Accesses int      `json:"accesses"`
	Warmup   int      `json:"warmup"`
}

// Validate reports spec errors.
func (s Spec) Validate() error {
	if len(s.Machines) == 0 {
		return fmt.Errorf("mcsweep: spec needs machines")
	}
	if len(s.Apps) == 0 {
		return fmt.Errorf("mcsweep: spec needs apps")
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("mcsweep: spec needs seeds")
	}
	if s.Accesses <= 0 {
		return fmt.Errorf("mcsweep: accesses must be positive")
	}
	if s.Warmup < 0 {
		return fmt.Errorf("mcsweep: negative warmup")
	}
	return nil
}

func defaultSpec() Spec {
	return Spec{
		Machines: []string{"baseline-sram", "sp-mr", "dp-sr"},
		Apps:     []string{"browser", "music"},
		Seeds:    []uint64{1, 2},
		Accesses: 200_000,
	}
}

// options collects the harness knobs.
type options struct {
	jobs           int
	timeout        time.Duration
	retries        int
	keepGoing      bool
	failuresOut    string
	traceCacheMB   int
	checkpointPath string
	resume         bool
	audit          string
}

// validate rejects nonsensical harness settings up front — a sweep
// that would hang on zero workers or silently clamp a negative
// deadline must fail before any cell runs.
func (o options) validate() error {
	if o.jobs < 1 {
		return fmt.Errorf("-jobs %d is not a runnable worker count (need >= 1)", o.jobs)
	}
	if o.timeout < 0 {
		return fmt.Errorf("-timeout %v is negative; use 0 to disable the per-cell deadline", o.timeout)
	}
	if o.retries < 0 {
		return fmt.Errorf("-retries %d is negative; use 0 to disable retries", o.retries)
	}
	if o.traceCacheMB < 0 {
		return fmt.Errorf("-trace-cache-mb %d is negative; use 0 for an unlimited arena", o.traceCacheMB)
	}
	if o.resume && o.checkpointPath == "" {
		return fmt.Errorf("-resume needs -checkpoint to name the journal to resume from")
	}
	if _, err := invariant.ParseMode(o.audit); err != nil {
		return fmt.Errorf("-audit: %w", err)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mcsweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("mcsweep", flag.ContinueOnError)
	specPath := fs.String("spec", "", "sweep spec JSON file")
	outPath := fs.String("o", "", "output CSV file (default stdout)")
	dump := fs.Bool("dump-spec", false, "print a starting-point spec and exit")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile here")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile here")
	var opt options
	fs.IntVar(&opt.jobs, "jobs", runtime.GOMAXPROCS(0), "parallel cells")
	fs.DurationVar(&opt.timeout, "timeout", 0, "per-cell deadline (0 = none)")
	fs.IntVar(&opt.retries, "retries", 0, "retries per cell for transient failures")
	fs.BoolVar(&opt.keepGoing, "keep-going", false, "record failed cells and finish the sweep (still exits non-zero)")
	fs.StringVar(&opt.failuresOut, "failures-out", "", "write the failure manifest JSON here (incrementally, then finalized)")
	fs.IntVar(&opt.traceCacheMB, "trace-cache-mb", 256, "trace arena LRU budget in MB (0 = unlimited)")
	fs.StringVar(&opt.checkpointPath, "checkpoint", "", "journal completed cells to this crash-safe file")
	fs.BoolVar(&opt.resume, "resume", false, "skip cells already completed in the -checkpoint journal")
	fs.StringVar(&opt.audit, "audit", "warn", "invariant audit mode: off, warn or strict")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *dump {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(defaultSpec())
	}
	if *specPath == "" {
		return fmt.Errorf("need -spec (or -dump-spec)")
	}
	if err := opt.validate(); err != nil {
		return err
	}
	spec, err := loadSpec(*specPath)
	if err != nil {
		return err
	}

	mode, err := invariant.ParseMode(opt.audit)
	if err != nil {
		return err
	}
	restoreAudit := sim.SetAuditMode(mode)
	defer restoreAudit()

	stopProfile, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}

	var w io.Writer = out
	var of *os.File
	if *outPath != "" {
		of, err = os.Create(*outPath)
		if err != nil {
			stopProfile()
			return err
		}
		w = of
	}
	sweepErr := sweep(spec, opt, w, errOut)
	if of != nil {
		// A close error is a truncated results file (e.g. full disk) —
		// it must fail the run, not be swallowed.
		if cerr := of.Close(); cerr != nil && sweepErr == nil {
			sweepErr = fmt.Errorf("closing %s: %w", *outPath, cerr)
		}
	}
	if perr := stopProfile(); perr != nil && sweepErr == nil {
		sweepErr = perr
	}
	return sweepErr
}

// startProfiles wires the optional pprof outputs and returns the
// function that finalizes them (stops the CPU profile, snapshots the
// heap after a GC).
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		var ferr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			ferr = cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return ferr
	}, nil
}

// loadSpec reads, fully parses and validates the spec file. Trailing
// data after the JSON object (a concatenated second spec, an editing
// accident) is rejected: silently ignoring it would run a different
// sweep than the file describes.
func loadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	var spec Spec
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("decoding spec: %w", err)
	}
	if tok, err := dec.Token(); err != io.EOF {
		return Spec{}, fmt.Errorf("spec %s: trailing data after the spec object (next token %v, err %v)", path, tok, err)
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// machineFor resolves a machine entry: standard scheme names win, and
// only non-schemes fall back to config-file loading. (Resolving by
// name first means a scheme alias containing a '.' can never be
// silently mistaken for a file path.)
func machineFor(entry string) (config.Machine, error) {
	if m, err := sim.MachineByName(entry); err == nil {
		return m, nil
	}
	m, err := config.LoadFile(entry)
	if err != nil {
		return config.Machine{}, fmt.Errorf("machine %q is not a standard scheme (have %v) and not a loadable config file: %w",
			entry, sim.StandardMachineNames(), err)
	}
	return m, nil
}

func sweep(spec Spec, opt options, w, errOut io.Writer) error {
	// Resolve every machine and app up front: a typo in the spec is a
	// configuration error and should fail the whole sweep immediately,
	// not burn through N-1 healthy cells first.
	machines := make(map[string]config.Machine, len(spec.Machines))
	for _, entry := range spec.Machines {
		cfg, err := machineFor(entry)
		if err != nil {
			return err
		}
		machines[entry] = cfg
	}
	profiles := make(map[string]workload.Profile, len(spec.Apps))
	for _, appName := range spec.Apps {
		prof, err := workload.ProfileByName(appName)
		if err != nil {
			return err
		}
		profiles[appName] = prof
	}

	// Cells in spec order; outcomes come back in the same order, so the
	// CSV is byte-identical for identical specs regardless of -jobs.
	// Each cell's checkpoint key hashes its full resolved inputs, so a
	// resumed sweep skips exactly the cells whose inputs are unchanged,
	// however the spec was edited or reordered in between.
	var cells []runner.Cell
	keys := map[runner.Cell]checkpoint.Key{}
	for _, mEntry := range spec.Machines {
		for _, appName := range spec.Apps {
			for _, seed := range spec.Seeds {
				c := runner.Cell{Machine: mEntry, App: appName, Seed: seed}
				key, err := checkpoint.KeyOf(machines[mEntry], profiles[appName], seed, spec.Accesses, spec.Warmup)
				if err != nil {
					return fmt.Errorf("keying cell %s: %w", c, err)
				}
				cells = append(cells, c)
				keys[c] = key
			}
		}
	}

	// Open the checkpoint journal. Resume replays the valid prefix
	// (later entries win, so a cell re-run after a crash supersedes
	// its earlier record) and truncates any torn tail.
	var (
		journal   *checkpoint.Journal
		resumed   map[checkpoint.Key]sim.RunReport
		nResumed  atomic.Uint64
		discarded int64
	)
	if opt.checkpointPath != "" {
		if opt.resume {
			j, entries, info, err := checkpoint.Resume(opt.checkpointPath, 0)
			if err != nil {
				return fmt.Errorf("resuming checkpoint %s: %w", opt.checkpointPath, err)
			}
			journal = j
			discarded = info.DiscardedBytes
			resumed = make(map[checkpoint.Key]sim.RunReport, len(entries))
			for _, e := range entries {
				var rep sim.RunReport
				if err := json.Unmarshal(e.Data, &rep); err != nil {
					// CRC-valid but undecodable means a format-version skew;
					// re-running the cell is always safe.
					fmt.Fprintf(errOut, "checkpoint: skipping undecodable entry: %v\n", err)
					continue
				}
				resumed[e.Key] = rep
			}
			if discarded > 0 {
				fmt.Fprintf(errOut, "checkpoint: discarded %d corrupt trailing bytes (crash remnant); %d entries survive\n",
					discarded, len(entries))
			}
		} else {
			j, err := checkpoint.Create(opt.checkpointPath, 0)
			if err != nil {
				return fmt.Errorf("creating checkpoint %s: %w", opt.checkpointPath, err)
			}
			journal = j
		}
	}

	// One trace arena for the whole sweep: cells that repeat an
	// (app, seed) pair across machines replay the cached packed trace
	// instead of regenerating it.
	store := tracestore.New(int64(opt.traceCacheMB) << 20)

	// Failures stream into the manifest file as they happen (one
	// fsynced JSON line each), so a killed sweep still leaves a
	// diagnosable failure log; Finalize replaces it with the canonical
	// manifest at the end.
	var mlog *runner.ManifestLogger
	rcfg := runner.Config{
		Workers:   opt.jobs,
		Timeout:   opt.timeout,
		Retries:   opt.retries,
		KeepGoing: opt.keepGoing,
	}
	if opt.failuresOut != "" {
		var err error
		mlog, err = runner.NewManifestLogger(opt.failuresOut)
		if err != nil {
			return fmt.Errorf("opening failure manifest %s: %w", opt.failuresOut, err)
		}
		rcfg.OnFailure = mlog.Record
	}
	outcomes, runErr := runner.Run(context.Background(), rcfg, cells,
		func(_ context.Context, c runner.Cell) (sim.RunReport, error) {
			key := keys[c]
			if rep, ok := resumed[key]; ok {
				// Already completed (and audited) in a previous run.
				nResumed.Add(1)
				return rep, nil
			}
			cfg, prof := machines[c.Machine], profiles[c.App]
			var rep sim.RunReport
			var err error
			if spec.Warmup > 0 {
				rep, err = sim.RunWarmWorkloadFrom(store, cfg, prof, c.Seed, spec.Warmup, spec.Accesses)
			} else {
				rep, err = sim.RunWorkloadFrom(store, cfg, prof, c.Seed, spec.Accesses)
			}
			if err != nil {
				return rep, err
			}
			if journal != nil {
				// A cell whose result can't be made durable is a failed
				// cell: the user asked for crash safety.
				if jerr := journal.AppendJSON(key, rep); jerr != nil {
					return rep, fmt.Errorf("checkpoint append: %w", jerr)
				}
			}
			return rep, nil
		})

	if journal != nil {
		if cerr := journal.Close(); cerr != nil && runErr == nil {
			runErr = fmt.Errorf("closing checkpoint %s: %w", opt.checkpointPath, cerr)
		}
	}

	cw := csv.NewWriter(w)
	header := []string{
		"machine", "app", "seed", "accesses",
		"ipc", "l2_missrate", "l2_kernel_share",
		"l2_read_j", "l2_write_j", "l2_leakage_j", "l2_refresh_j", "l2_total_j",
		"dram_reads", "dram_writes", "hierarchy_total_j",
		"l2_powered_bytes",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, o := range outcomes {
		if o.Err != nil {
			continue
		}
		if err := cw.Write(row(machines[o.Cell.Machine].Name, o.Cell.App, o.Cell.Seed, o.Value)); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}

	manifest := runner.BuildManifest(outcomes)
	st := store.Stats()
	fmt.Fprintf(errOut,
		"sweep: %d cells (%d ok, %d failed, %d resumed); trace arena: %d generated, %d hits, %d misses, %.1f MB resident, %d evicted\n",
		manifest.TotalCells, manifest.Succeeded, len(manifest.Failed), nResumed.Load(),
		st.Generated, st.Hits, st.Misses, float64(st.BytesInUse)/(1<<20), st.Evictions)
	if journal != nil {
		fmt.Fprintf(errOut, "checkpoint: %d cells appended to %s (%d resumed, %d corrupt bytes discarded)\n",
			journal.Appended(), opt.checkpointPath, nResumed.Load(), discarded)
	}
	if mlog != nil {
		if err := mlog.Finalize(manifest); err != nil {
			return fmt.Errorf("writing failure manifest %s: %w", opt.failuresOut, err)
		}
	}

	if runErr != nil {
		var re *runner.RunError
		if errors.As(runErr, &re) {
			return fmt.Errorf("sweep aborted (rerun with -keep-going to finish the healthy cells): %w", re)
		}
		return runErr
	}
	if n := len(manifest.Failed); n > 0 {
		return fmt.Errorf("%d of %d cells failed (see failure manifest%s)", n, manifest.TotalCells, manifestHint(opt.failuresOut))
	}
	return nil
}

func manifestHint(path string) string {
	if path == "" {
		return "; pass -failures-out to save it"
	}
	return " in " + path
}

// row renders one successful cell's CSV record.
func row(machine, app string, seed uint64, rep sim.RunReport) []string {
	bd := rep.Energy.L2
	return []string{
		machine, app, strconv.FormatUint(seed, 10),
		strconv.FormatUint(rep.CPU.Accesses, 10),
		fmt.Sprintf("%.6f", rep.IPC()),
		fmt.Sprintf("%.6f", rep.L2.MissRate()),
		fmt.Sprintf("%.6f", rep.L2.KernelShare()),
		fmt.Sprintf("%.6g", bd.ReadJ),
		fmt.Sprintf("%.6g", bd.WriteJ),
		fmt.Sprintf("%.6g", bd.LeakageJ),
		fmt.Sprintf("%.6g", bd.RefreshJ),
		fmt.Sprintf("%.6g", bd.Total()),
		strconv.FormatUint(rep.DRAMReads, 10),
		strconv.FormatUint(rep.DRAMWrites, 10),
		fmt.Sprintf("%.6g", rep.Energy.TotalJ()),
		strconv.FormatUint(rep.L2PoweredBytes, 10),
	}
}
