// mcsweep runs a batch of (machine, app, seed) simulations described
// by a JSON spec and emits one CSV row per run — the bulk-experiment
// front end for custom studies. Cells run in parallel on a bounded,
// fault-containing worker pool (internal/runner): a panicking or
// erroring cell is recorded — with -keep-going, in a failure manifest
// — while the rest of the sweep completes and emits its partial CSV.
//
// Usage:
//
//	mcsweep -spec sweep.json [-o results.csv]
//	mcsweep -spec sweep.json -jobs 8 -timeout 5m -retries 2 \
//	        -keep-going -failures-out failed.json
//	mcsweep -dump-spec          # print a starting-point spec
//
// Spec format:
//
//	{
//	  "machines": ["baseline-sram", "sp-mr", "my-machine.json"],
//	  "apps": ["browser", "music"],
//	  "seeds": [1, 2, 3],
//	  "accesses": 400000,
//	  "warmup": 0
//	}
//
// Machine entries name standard schemes, or point at config JSON files
// when they are not a scheme name. A positive warmup measures only the
// accesses after the warmup prefix.
//
// Rows appear in spec order (machines x apps x seeds) regardless of
// -jobs, so identical specs produce byte-identical CSVs. With
// -keep-going a sweep with failures still exits non-zero, after
// writing every healthy row and the failure manifest.
//
// All cells of a sweep share one trace arena (internal/tracestore):
// rows that repeat an (app, seed) pair across machines replay the
// cached packed trace instead of regenerating it. -trace-cache-mb
// bounds the arena's memory; the end-of-sweep summary on stderr
// reports, manifest-style, how many cells ran and how the arena
// performed (generated/hits/evictions). -cpuprofile and -memprofile
// write pprof profiles for performance work on the sweep engine.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"mobilecache/internal/config"
	"mobilecache/internal/runner"
	"mobilecache/internal/sim"
	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

// Spec describes one sweep.
type Spec struct {
	Machines []string `json:"machines"`
	Apps     []string `json:"apps"`
	Seeds    []uint64 `json:"seeds"`
	Accesses int      `json:"accesses"`
	Warmup   int      `json:"warmup"`
}

// Validate reports spec errors.
func (s Spec) Validate() error {
	if len(s.Machines) == 0 {
		return fmt.Errorf("mcsweep: spec needs machines")
	}
	if len(s.Apps) == 0 {
		return fmt.Errorf("mcsweep: spec needs apps")
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("mcsweep: spec needs seeds")
	}
	if s.Accesses <= 0 {
		return fmt.Errorf("mcsweep: accesses must be positive")
	}
	if s.Warmup < 0 {
		return fmt.Errorf("mcsweep: negative warmup")
	}
	return nil
}

func defaultSpec() Spec {
	return Spec{
		Machines: []string{"baseline-sram", "sp-mr", "dp-sr"},
		Apps:     []string{"browser", "music"},
		Seeds:    []uint64{1, 2},
		Accesses: 200_000,
	}
}

// options collects the harness knobs.
type options struct {
	jobs         int
	timeout      time.Duration
	retries      int
	keepGoing    bool
	failuresOut  string
	traceCacheMB int
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mcsweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("mcsweep", flag.ContinueOnError)
	specPath := fs.String("spec", "", "sweep spec JSON file")
	outPath := fs.String("o", "", "output CSV file (default stdout)")
	dump := fs.Bool("dump-spec", false, "print a starting-point spec and exit")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile here")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile here")
	var opt options
	fs.IntVar(&opt.jobs, "jobs", 0, "parallel cells (default GOMAXPROCS)")
	fs.DurationVar(&opt.timeout, "timeout", 0, "per-cell deadline (0 = none)")
	fs.IntVar(&opt.retries, "retries", 0, "retries per cell for transient failures")
	fs.BoolVar(&opt.keepGoing, "keep-going", false, "record failed cells and finish the sweep (still exits non-zero)")
	fs.StringVar(&opt.failuresOut, "failures-out", "", "write the failure manifest JSON here")
	fs.IntVar(&opt.traceCacheMB, "trace-cache-mb", 256, "trace arena LRU budget in MB (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *dump {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(defaultSpec())
	}
	if *specPath == "" {
		return fmt.Errorf("need -spec (or -dump-spec)")
	}
	spec, err := loadSpec(*specPath)
	if err != nil {
		return err
	}

	stopProfile, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}

	var w io.Writer = out
	var of *os.File
	if *outPath != "" {
		of, err = os.Create(*outPath)
		if err != nil {
			stopProfile()
			return err
		}
		w = of
	}
	sweepErr := sweep(spec, opt, w, errOut)
	if of != nil {
		// A close error is a truncated results file (e.g. full disk) —
		// it must fail the run, not be swallowed.
		if cerr := of.Close(); cerr != nil && sweepErr == nil {
			sweepErr = fmt.Errorf("closing %s: %w", *outPath, cerr)
		}
	}
	if perr := stopProfile(); perr != nil && sweepErr == nil {
		sweepErr = perr
	}
	return sweepErr
}

// startProfiles wires the optional pprof outputs and returns the
// function that finalizes them (stops the CPU profile, snapshots the
// heap after a GC).
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		var ferr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			ferr = cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return ferr
	}, nil
}

// loadSpec reads, fully parses and validates the spec file. Trailing
// data after the JSON object (a concatenated second spec, an editing
// accident) is rejected: silently ignoring it would run a different
// sweep than the file describes.
func loadSpec(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	var spec Spec
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("decoding spec: %w", err)
	}
	if tok, err := dec.Token(); err != io.EOF {
		return Spec{}, fmt.Errorf("spec %s: trailing data after the spec object (next token %v, err %v)", path, tok, err)
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// machineFor resolves a machine entry: standard scheme names win, and
// only non-schemes fall back to config-file loading. (Resolving by
// name first means a scheme alias containing a '.' can never be
// silently mistaken for a file path.)
func machineFor(entry string) (config.Machine, error) {
	if m, err := sim.MachineByName(entry); err == nil {
		return m, nil
	}
	m, err := config.LoadFile(entry)
	if err != nil {
		return config.Machine{}, fmt.Errorf("machine %q is not a standard scheme (have %v) and not a loadable config file: %w",
			entry, sim.StandardMachineNames(), err)
	}
	return m, nil
}

func sweep(spec Spec, opt options, w, errOut io.Writer) error {
	// Resolve every machine and app up front: a typo in the spec is a
	// configuration error and should fail the whole sweep immediately,
	// not burn through N-1 healthy cells first.
	machines := make(map[string]config.Machine, len(spec.Machines))
	for _, entry := range spec.Machines {
		cfg, err := machineFor(entry)
		if err != nil {
			return err
		}
		machines[entry] = cfg
	}
	profiles := make(map[string]workload.Profile, len(spec.Apps))
	for _, appName := range spec.Apps {
		prof, err := workload.ProfileByName(appName)
		if err != nil {
			return err
		}
		profiles[appName] = prof
	}

	// Cells in spec order; outcomes come back in the same order, so the
	// CSV is byte-identical for identical specs regardless of -jobs.
	var cells []runner.Cell
	for _, mEntry := range spec.Machines {
		for _, appName := range spec.Apps {
			for _, seed := range spec.Seeds {
				cells = append(cells, runner.Cell{Machine: mEntry, App: appName, Seed: seed})
			}
		}
	}

	// One trace arena for the whole sweep: cells that repeat an
	// (app, seed) pair across machines replay the cached packed trace
	// instead of regenerating it.
	store := tracestore.New(int64(opt.traceCacheMB) << 20)

	rcfg := runner.Config{
		Workers:   opt.jobs,
		Timeout:   opt.timeout,
		Retries:   opt.retries,
		KeepGoing: opt.keepGoing,
	}
	outcomes, runErr := runner.Run(context.Background(), rcfg, cells,
		func(_ context.Context, c runner.Cell) (sim.RunReport, error) {
			cfg, prof := machines[c.Machine], profiles[c.App]
			if spec.Warmup > 0 {
				return sim.RunWarmWorkloadFrom(store, cfg, prof, c.Seed, spec.Warmup, spec.Accesses)
			}
			return sim.RunWorkloadFrom(store, cfg, prof, c.Seed, spec.Accesses)
		})

	cw := csv.NewWriter(w)
	header := []string{
		"machine", "app", "seed", "accesses",
		"ipc", "l2_missrate", "l2_kernel_share",
		"l2_read_j", "l2_write_j", "l2_leakage_j", "l2_refresh_j", "l2_total_j",
		"dram_reads", "dram_writes", "hierarchy_total_j",
		"l2_powered_bytes",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, o := range outcomes {
		if o.Err != nil {
			continue
		}
		if err := cw.Write(row(machines[o.Cell.Machine].Name, o.Cell.App, o.Cell.Seed, o.Value)); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}

	manifest := runner.BuildManifest(outcomes)
	st := store.Stats()
	fmt.Fprintf(errOut,
		"sweep: %d cells (%d ok, %d failed); trace arena: %d generated, %d hits, %d misses, %.1f MB resident, %d evicted\n",
		manifest.TotalCells, manifest.Succeeded, len(manifest.Failed),
		st.Generated, st.Hits, st.Misses, float64(st.BytesInUse)/(1<<20), st.Evictions)
	if opt.failuresOut != "" {
		mf, err := os.Create(opt.failuresOut)
		if err != nil {
			return err
		}
		werr := manifest.WriteJSON(mf)
		if cerr := mf.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing failure manifest %s: %w", opt.failuresOut, werr)
		}
	}

	if runErr != nil {
		var re *runner.RunError
		if errors.As(runErr, &re) {
			return fmt.Errorf("sweep aborted (rerun with -keep-going to finish the healthy cells): %w", re)
		}
		return runErr
	}
	if n := len(manifest.Failed); n > 0 {
		return fmt.Errorf("%d of %d cells failed (see failure manifest%s)", n, manifest.TotalCells, manifestHint(opt.failuresOut))
	}
	return nil
}

func manifestHint(path string) string {
	if path == "" {
		return "; pass -failures-out to save it"
	}
	return " in " + path
}

// row renders one successful cell's CSV record.
func row(machine, app string, seed uint64, rep sim.RunReport) []string {
	bd := rep.Energy.L2
	return []string{
		machine, app, strconv.FormatUint(seed, 10),
		strconv.FormatUint(rep.CPU.Accesses, 10),
		fmt.Sprintf("%.6f", rep.IPC()),
		fmt.Sprintf("%.6f", rep.L2.MissRate()),
		fmt.Sprintf("%.6f", rep.L2.KernelShare()),
		fmt.Sprintf("%.6g", bd.ReadJ),
		fmt.Sprintf("%.6g", bd.WriteJ),
		fmt.Sprintf("%.6g", bd.LeakageJ),
		fmt.Sprintf("%.6g", bd.RefreshJ),
		fmt.Sprintf("%.6g", bd.Total()),
		strconv.FormatUint(rep.DRAMReads, 10),
		strconv.FormatUint(rep.DRAMWrites, 10),
		fmt.Sprintf("%.6g", rep.Energy.TotalJ()),
		strconv.FormatUint(rep.L2PoweredBytes, 10),
	}
}
