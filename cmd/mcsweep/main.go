// mcsweep runs a batch of (machine, app, seed) simulations described
// by a JSON spec and emits one CSV row per run — the bulk-experiment
// front end for custom studies.
//
// Usage:
//
//	mcsweep -spec sweep.json [-o results.csv]
//	mcsweep -dump-spec          # print a starting-point spec
//
// Spec format:
//
//	{
//	  "machines": ["baseline-sram", "sp-mr", "my-machine.json"],
//	  "apps": ["browser", "music"],
//	  "seeds": [1, 2, 3],
//	  "accesses": 400000,
//	  "warmup": 0
//	}
//
// Machine entries name standard schemes or point at config JSON files
// (anything containing a '.' or '/' is treated as a path). A positive
// warmup measures only the accesses after the warmup prefix.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mobilecache/internal/config"
	"mobilecache/internal/sim"
	"mobilecache/internal/workload"
)

// Spec describes one sweep.
type Spec struct {
	Machines []string `json:"machines"`
	Apps     []string `json:"apps"`
	Seeds    []uint64 `json:"seeds"`
	Accesses int      `json:"accesses"`
	Warmup   int      `json:"warmup"`
}

// Validate reports spec errors.
func (s Spec) Validate() error {
	if len(s.Machines) == 0 {
		return fmt.Errorf("mcsweep: spec needs machines")
	}
	if len(s.Apps) == 0 {
		return fmt.Errorf("mcsweep: spec needs apps")
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("mcsweep: spec needs seeds")
	}
	if s.Accesses <= 0 {
		return fmt.Errorf("mcsweep: accesses must be positive")
	}
	if s.Warmup < 0 {
		return fmt.Errorf("mcsweep: negative warmup")
	}
	return nil
}

func defaultSpec() Spec {
	return Spec{
		Machines: []string{"baseline-sram", "sp-mr", "dp-sr"},
		Apps:     []string{"browser", "music"},
		Seeds:    []uint64{1, 2},
		Accesses: 200_000,
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mcsweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mcsweep", flag.ContinueOnError)
	specPath := fs.String("spec", "", "sweep spec JSON file")
	outPath := fs.String("o", "", "output CSV file (default stdout)")
	dump := fs.Bool("dump-spec", false, "print a starting-point spec and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *dump {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(defaultSpec())
	}
	if *specPath == "" {
		return fmt.Errorf("need -spec (or -dump-spec)")
	}
	f, err := os.Open(*specPath)
	if err != nil {
		return err
	}
	var spec Spec
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	err = dec.Decode(&spec)
	f.Close()
	if err != nil {
		return fmt.Errorf("decoding spec: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return err
	}

	var w io.Writer = out
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	return sweep(spec, w)
}

// machineFor resolves a machine entry: a standard scheme name or a
// config file path.
func machineFor(entry string) (config.Machine, error) {
	if strings.ContainsAny(entry, "./") {
		return config.LoadFile(entry)
	}
	return sim.MachineByName(entry)
}

func sweep(spec Spec, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"machine", "app", "seed", "accesses",
		"ipc", "l2_missrate", "l2_kernel_share",
		"l2_read_j", "l2_write_j", "l2_leakage_j", "l2_refresh_j", "l2_total_j",
		"dram_reads", "dram_writes", "hierarchy_total_j",
		"l2_powered_bytes",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, mEntry := range spec.Machines {
		cfg, err := machineFor(mEntry)
		if err != nil {
			return err
		}
		for _, appName := range spec.Apps {
			prof, err := workload.ProfileByName(appName)
			if err != nil {
				return err
			}
			for _, seed := range spec.Seeds {
				var rep sim.RunReport
				if spec.Warmup > 0 {
					rep, err = sim.RunWarmWorkload(cfg, prof, seed, spec.Warmup, spec.Accesses)
				} else {
					rep, err = sim.RunWorkload(cfg, prof, seed, spec.Accesses)
				}
				if err != nil {
					return fmt.Errorf("%s on %s seed %d: %w", appName, cfg.Name, seed, err)
				}
				bd := rep.Energy.L2
				row := []string{
					cfg.Name, appName, strconv.FormatUint(seed, 10),
					strconv.FormatUint(rep.CPU.Accesses, 10),
					fmt.Sprintf("%.6f", rep.IPC()),
					fmt.Sprintf("%.6f", rep.L2.MissRate()),
					fmt.Sprintf("%.6f", rep.L2.KernelShare()),
					fmt.Sprintf("%.6g", bd.ReadJ),
					fmt.Sprintf("%.6g", bd.WriteJ),
					fmt.Sprintf("%.6g", bd.LeakageJ),
					fmt.Sprintf("%.6g", bd.RefreshJ),
					fmt.Sprintf("%.6g", bd.Total()),
					strconv.FormatUint(rep.DRAMReads, 10),
					strconv.FormatUint(rep.DRAMWrites, 10),
					fmt.Sprintf("%.6g", rep.Energy.TotalJ()),
					strconv.FormatUint(rep.L2PoweredBytes, 10),
				}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
