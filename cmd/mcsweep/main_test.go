package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"mobilecache/internal/engine"
	"mobilecache/internal/sim"
)

func writeSpec(t *testing.T, spec string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDumpSpec(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dump-spec"}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"machines"`) {
		t.Fatalf("dump-spec output wrong:\n%s", out.String())
	}
}

func TestSweepProducesCSV(t *testing.T) {
	path := writeSpec(t, `{
		"machines": ["baseline-sram", "sp-mr"],
		"apps": ["music"],
		"seeds": [1, 2],
		"accesses": 20000
	}`)
	var out bytes.Buffer
	if err := run([]string{"-spec", path}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 machines x 1 app x 2 seeds.
	if len(rows) != 5 {
		t.Fatalf("csv has %d rows, want 5", len(rows))
	}
	if rows[0][0] != "machine" || rows[0][4] != "ipc" {
		t.Fatalf("header wrong: %v", rows[0])
	}
	// Every data row parses numerically where expected.
	for _, r := range rows[1:] {
		if _, err := strconv.ParseFloat(r[4], 64); err != nil {
			t.Fatalf("ipc cell %q not a float", r[4])
		}
		if _, err := strconv.ParseFloat(r[11], 64); err != nil {
			t.Fatalf("total energy cell %q not a float", r[11])
		}
	}
	// The sp-mr rows must show less L2 energy than baseline rows.
	var baseE, spmrE float64
	for _, r := range rows[1:] {
		e, _ := strconv.ParseFloat(r[11], 64)
		switch r[0] {
		case "baseline-sram":
			baseE += e
		case "sp-mr":
			spmrE += e
		}
	}
	if spmrE >= baseE {
		t.Fatalf("sweep results inconsistent: sp-mr %g >= baseline %g", spmrE, baseE)
	}
}

// TestSweepSharedTraceArena: all cells of a sweep share one trace
// store, so a 2-machine x 1-app x 2-seed sweep generates exactly 2
// traces and replays them for the second machine — and the stderr
// summary surfaces those counters.
func TestSweepSharedTraceArena(t *testing.T) {
	path := writeSpec(t, `{
		"machines": ["baseline-sram", "sp-mr"],
		"apps": ["music"],
		"seeds": [1, 2],
		"accesses": 20000
	}`)
	var out, errOut bytes.Buffer
	if err := run([]string{"-spec", path}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	summary := errOut.String()
	if !strings.Contains(summary, "4 cells (4 ok, 0 failed, 0 resumed, 0 memoized)") {
		t.Fatalf("summary missing cell counts:\n%s", summary)
	}
	if !strings.Contains(summary, "2 generated, 2 hits, 2 misses") {
		t.Fatalf("summary missing trace-arena counters (want 2 generated, 2 hits, 2 misses):\n%s", summary)
	}
	// The sharded-cache summary surfaces the run memo alongside the
	// arena: 4 distinct cells mean 4 memo misses and no hits.
	if !strings.Contains(summary, "run memo: 0 hits, 4 misses") {
		t.Fatalf("summary missing run-memo counters:\n%s", summary)
	}
}

func TestSweepWithWarmupAndFile(t *testing.T) {
	path := writeSpec(t, `{
		"machines": ["baseline-sram"],
		"apps": ["game"],
		"seeds": [3],
		"accesses": 15000,
		"warmup": 15000
	}`)
	outPath := filepath.Join(t.TempDir(), "out.csv")
	var out bytes.Buffer
	if err := run([]string{"-spec", path, "-o", outPath}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil || len(rows) != 2 {
		t.Fatalf("file csv rows = %d, err %v", len(rows), err)
	}
	if rows[1][3] != "15000" {
		t.Fatalf("warm run measured %s accesses, want 15000", rows[1][3])
	}
}

func TestSweepWithConfigFileMachine(t *testing.T) {
	mPath := filepath.Join("..", "..", "configs", "dp-sr.json")
	if _, err := os.Stat(mPath); err != nil {
		t.Skip("shipped configs not present")
	}
	spec := `{"machines": ["` + filepath.ToSlash(mPath) + `"], "apps": ["music"], "seeds": [1], "accesses": 10000}`
	path := writeSpec(t, spec)
	var out bytes.Buffer
	if err := run([]string{"-spec", path}, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dp-sr") {
		t.Fatalf("config-file machine missing from output:\n%s", out.String())
	}
}

func TestSweepErrors(t *testing.T) {
	cases := []string{
		`{}`,
		`{"machines":["baseline-sram"]}`,
		`{"machines":["baseline-sram"],"apps":["music"]}`,
		`{"machines":["baseline-sram"],"apps":["music"],"seeds":[1]}`,
		`{"machines":["baseline-sram"],"apps":["music"],"seeds":[1],"accesses":-5}`,
		`{"machines":["nonexistent"],"apps":["music"],"seeds":[1],"accesses":100}`,
		`{"machines":["baseline-sram"],"apps":["nonexistent"],"seeds":[1],"accesses":100}`,
		`{"unknown_field":1}`,
	}
	for _, spec := range cases {
		path := writeSpec(t, spec)
		var out bytes.Buffer
		if err := run([]string{"-spec", path}, &out, io.Discard); err == nil {
			t.Errorf("spec %s accepted, want error", spec)
		}
	}
	var out bytes.Buffer
	if err := run([]string{}, &out, io.Discard); err == nil {
		t.Error("missing -spec accepted")
	}
	if err := run([]string{"-spec", "/does/not/exist.json"}, &out, io.Discard); err == nil {
		t.Error("missing spec file accepted")
	}
}

func TestSpecTrailingGarbageRejected(t *testing.T) {
	base := `{"machines":["baseline-sram"],"apps":["music"],"seeds":[1],"accesses":1000}`
	for _, trailing := range []string{`{}`, `garbage`, `42`, `{"machines":["sp"]}`} {
		path := writeSpec(t, base+"\n"+trailing)
		var out bytes.Buffer
		err := run([]string{"-spec", path}, &out, io.Discard)
		if err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Errorf("spec with trailing %q: err = %v, want trailing-data error", trailing, err)
		}
	}
	// Trailing whitespace stays fine.
	path := writeSpec(t, base+"\n\n  \n")
	var out bytes.Buffer
	if err := run([]string{"-spec", path}, &out, io.Discard); err != nil {
		t.Fatalf("trailing whitespace rejected: %v", err)
	}
}

func TestMachineForSchemeFirst(t *testing.T) {
	// Scheme names resolve even from a directory where a file of the
	// same name exists.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "sp-mr"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	wd, _ := os.Getwd()
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)
	m, err := engine.ResolveMachine("sp-mr")
	if err != nil || m.Name != "sp-mr" {
		t.Fatalf("engine.ResolveMachine(sp-mr) = %v, %v; want the standard scheme", m.Name, err)
	}
	// A dotted non-scheme, non-file entry fails loudly with both facts.
	_, err = engine.ResolveMachine("sp-mr.v2")
	if err == nil {
		t.Fatal("sp-mr.v2 accepted")
	}
	if !strings.Contains(err.Error(), "not a standard scheme") || !strings.Contains(err.Error(), "config file") {
		t.Fatalf("unclear resolution error: %v", err)
	}
}

func TestOutputFileCreateFailure(t *testing.T) {
	path := writeSpec(t, `{"machines":["baseline-sram"],"apps":["music"],"seeds":[1],"accesses":1000}`)
	var out bytes.Buffer
	// -o pointing into a missing directory must fail, not silently
	// write nowhere.
	if err := run([]string{"-spec", path, "-o", filepath.Join(t.TempDir(), "no", "such", "dir.csv")}, &out, io.Discard); err == nil {
		t.Fatal("unwritable -o accepted")
	}
}

// chaosSpec builds a 12-cell spec (3 machines x 2 apps x 2 seeds).
func chaosSpec(t *testing.T) string {
	return writeSpec(t, `{
		"machines": ["baseline-sram", "sp-mr", "dp-sr"],
		"apps": ["browser", "music"],
		"seeds": [1, 2],
		"accesses": 4000
	}`)
}

// The acceptance chaos drill: 12 cells, 25% injected panic/error rate,
// -keep-going. The sweep must exit non-zero, emit CSV rows for every
// healthy cell plus a manifest naming each failed (machine, app, seed),
// and reproduce the same manifest and CSV on a second run.
func TestChaosKeepGoingDegradesGracefully(t *testing.T) {
	restore := sim.InstallChaos(&sim.Chaos{PanicRate: 0.125, ErrorRate: 0.125, Seed: 4})
	defer restore()

	path := chaosSpec(t)
	runOnce := func() (string, string, error) {
		manifestPath := filepath.Join(t.TempDir(), "failed.json")
		var out bytes.Buffer
		err := run([]string{"-spec", path, "-jobs", "4", "-keep-going", "-failures-out", manifestPath}, &out, io.Discard)
		data, rerr := os.ReadFile(manifestPath)
		if rerr != nil {
			t.Fatalf("manifest not written: %v", rerr)
		}
		return out.String(), string(data), err
	}
	csvOut, manifestOut, err := runOnce()
	if err == nil {
		t.Fatal("sweep with failed cells exited zero")
	}

	var m struct {
		TotalCells int `json:"total_cells"`
		Succeeded  int `json:"succeeded"`
		Failed     []struct {
			Machine string `json:"machine"`
			App     string `json:"app"`
			Seed    uint64 `json:"seed"`
			Error   string `json:"error"`
		} `json:"failed"`
	}
	if err := json.Unmarshal([]byte(manifestOut), &m); err != nil {
		t.Fatal(err)
	}
	if m.TotalCells != 12 {
		t.Fatalf("manifest covers %d cells, want 12", m.TotalCells)
	}
	if len(m.Failed) == 0 || len(m.Failed) == 12 {
		t.Fatalf("chaos at 25%% should fail some but not all cells: %d/12 failed", len(m.Failed))
	}
	for _, f := range m.Failed {
		if f.Machine == "" || f.App == "" || f.Seed == 0 || f.Error == "" {
			t.Fatalf("manifest entry incomplete: %+v", f)
		}
	}

	rows, err := csv.NewReader(strings.NewReader(csvOut)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rows)-1, m.Succeeded; got != want {
		t.Fatalf("CSV has %d data rows, manifest says %d succeeded", got, want)
	}
	// No failed cell may appear in the CSV.
	failed := map[string]bool{}
	for _, f := range m.Failed {
		failed[f.Machine+"|"+f.App+"|"+strconv.FormatUint(f.Seed, 10)] = true
	}
	for _, r := range rows[1:] {
		if failed[r[0]+"|"+r[1]+"|"+r[2]] {
			t.Fatalf("failed cell %v leaked into the CSV", r[:3])
		}
	}

	// Same seed, same spec -> byte-identical manifest and CSV.
	csv2, manifest2, err2 := runOnce()
	if err2 == nil {
		t.Fatal("second run exited zero")
	}
	if manifest2 != manifestOut {
		t.Fatalf("manifest not reproducible:\n%s\n%s", manifestOut, manifest2)
	}
	if csv2 != csvOut {
		t.Fatal("CSV not reproducible across runs")
	}
}

func TestChaosWithoutKeepGoingAborts(t *testing.T) {
	restore := sim.InstallChaos(&sim.Chaos{ErrorRate: 0.25, Seed: 4})
	defer restore()
	var out bytes.Buffer
	err := run([]string{"-spec", chaosSpec(t), "-jobs", "2"}, &out, io.Discard)
	if err == nil {
		t.Fatal("failing sweep without -keep-going exited zero")
	}
	if !strings.Contains(err.Error(), "keep-going") {
		t.Fatalf("abort error should point at -keep-going: %v", err)
	}
}

func TestRetriesRecoverFlakyCells(t *testing.T) {
	restore := sim.InstallChaos(&sim.Chaos{FlakyRate: 1, Seed: 11})
	defer restore()
	var out bytes.Buffer
	spec := writeSpec(t, `{"machines":["baseline-sram"],"apps":["music"],"seeds":[1,2],"accesses":2000}`)
	// Without retries every cell fails on its first (flaky) attempt.
	if err := run([]string{"-spec", spec, "-keep-going"}, &out, io.Discard); err == nil {
		t.Fatal("flaky cells succeeded without retries")
	}
	out.Reset()
	if err := run([]string{"-spec", spec, "-retries", "1"}, &out, io.Discard); err != nil {
		t.Fatalf("retried sweep failed: %v", err)
	}
	rows, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil || len(rows) != 3 {
		t.Fatalf("retried sweep rows = %d, err %v; want 3", len(rows), err)
	}
}

func TestParallelSweepMatchesSerial(t *testing.T) {
	spec := writeSpec(t, `{
		"machines": ["baseline-sram", "sp-mr"],
		"apps": ["browser", "music"],
		"seeds": [1, 2],
		"accesses": 3000
	}`)
	var serial, parallel bytes.Buffer
	if err := run([]string{"-spec", spec, "-jobs", "1"}, &serial, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", spec, "-jobs", "8"}, &parallel, io.Discard); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatal("-jobs changed the CSV bytes; ordered collection broken")
	}
}

// Satellite of PR 5: -sample validation is fail-fast. A malformed spec
// is rejected before any cell runs, and a valid spec produces the same
// row count as the exact sweep with a clear error otherwise.
func TestSampleFlagValidation(t *testing.T) {
	spec := writeSpec(t, `{
		"machines": ["baseline-sram"],
		"apps": ["music"],
		"seeds": [1],
		"accesses": 4000
	}`)
	for _, bad := range []string{"0", "1/0", "3", "1/3", "-8", "1/-8", "256", "1/256", "hash:", "nonsense"} {
		var out bytes.Buffer
		err := run([]string{"-spec", spec, "-sample", bad}, &out, io.Discard)
		if err == nil || !strings.Contains(err.Error(), "-sample") {
			t.Errorf("-sample %q: err = %v, want fail-fast -sample error", bad, err)
		}
		if out.Len() != 0 {
			t.Errorf("-sample %q: cells ran before validation (wrote %d bytes)", bad, out.Len())
		}
	}
	var exact, sampled bytes.Buffer
	if err := run([]string{"-spec", spec, "-audit", "strict"}, &exact, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", spec, "-audit", "strict", "-sample", "1/8"}, &sampled, io.Discard); err != nil {
		t.Fatalf("sampled sweep failed: %v", err)
	}
	er, _ := csv.NewReader(strings.NewReader(exact.String())).ReadAll()
	sr, err := csv.NewReader(strings.NewReader(sampled.String())).ReadAll()
	if err != nil || len(sr) != len(er) {
		t.Fatalf("sampled sweep rows = %d, err %v; want %d", len(sr), err, len(er))
	}
	if exact.String() == sampled.String() {
		t.Error("sampled CSV is byte-identical to the exact CSV; -sample not applied")
	}
}
