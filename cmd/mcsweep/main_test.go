package main

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func writeSpec(t *testing.T, spec string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDumpSpec(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-dump-spec"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"machines"`) {
		t.Fatalf("dump-spec output wrong:\n%s", out.String())
	}
}

func TestSweepProducesCSV(t *testing.T) {
	path := writeSpec(t, `{
		"machines": ["baseline-sram", "sp-mr"],
		"apps": ["music"],
		"seeds": [1, 2],
		"accesses": 20000
	}`)
	var out bytes.Buffer
	if err := run([]string{"-spec", path}, &out); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 2 machines x 1 app x 2 seeds.
	if len(rows) != 5 {
		t.Fatalf("csv has %d rows, want 5", len(rows))
	}
	if rows[0][0] != "machine" || rows[0][4] != "ipc" {
		t.Fatalf("header wrong: %v", rows[0])
	}
	// Every data row parses numerically where expected.
	for _, r := range rows[1:] {
		if _, err := strconv.ParseFloat(r[4], 64); err != nil {
			t.Fatalf("ipc cell %q not a float", r[4])
		}
		if _, err := strconv.ParseFloat(r[11], 64); err != nil {
			t.Fatalf("total energy cell %q not a float", r[11])
		}
	}
	// The sp-mr rows must show less L2 energy than baseline rows.
	var baseE, spmrE float64
	for _, r := range rows[1:] {
		e, _ := strconv.ParseFloat(r[11], 64)
		switch r[0] {
		case "baseline-sram":
			baseE += e
		case "sp-mr":
			spmrE += e
		}
	}
	if spmrE >= baseE {
		t.Fatalf("sweep results inconsistent: sp-mr %g >= baseline %g", spmrE, baseE)
	}
}

func TestSweepWithWarmupAndFile(t *testing.T) {
	path := writeSpec(t, `{
		"machines": ["baseline-sram"],
		"apps": ["game"],
		"seeds": [3],
		"accesses": 15000,
		"warmup": 15000
	}`)
	outPath := filepath.Join(t.TempDir(), "out.csv")
	var out bytes.Buffer
	if err := run([]string{"-spec", path, "-o", outPath}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(bytes.NewReader(data)).ReadAll()
	if err != nil || len(rows) != 2 {
		t.Fatalf("file csv rows = %d, err %v", len(rows), err)
	}
	if rows[1][3] != "15000" {
		t.Fatalf("warm run measured %s accesses, want 15000", rows[1][3])
	}
}

func TestSweepWithConfigFileMachine(t *testing.T) {
	mPath := filepath.Join("..", "..", "configs", "dp-sr.json")
	if _, err := os.Stat(mPath); err != nil {
		t.Skip("shipped configs not present")
	}
	spec := `{"machines": ["` + filepath.ToSlash(mPath) + `"], "apps": ["music"], "seeds": [1], "accesses": 10000}`
	path := writeSpec(t, spec)
	var out bytes.Buffer
	if err := run([]string{"-spec", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dp-sr") {
		t.Fatalf("config-file machine missing from output:\n%s", out.String())
	}
}

func TestSweepErrors(t *testing.T) {
	cases := []string{
		`{}`,
		`{"machines":["baseline-sram"]}`,
		`{"machines":["baseline-sram"],"apps":["music"]}`,
		`{"machines":["baseline-sram"],"apps":["music"],"seeds":[1]}`,
		`{"machines":["baseline-sram"],"apps":["music"],"seeds":[1],"accesses":-5}`,
		`{"machines":["nonexistent"],"apps":["music"],"seeds":[1],"accesses":100}`,
		`{"machines":["baseline-sram"],"apps":["nonexistent"],"seeds":[1],"accesses":100}`,
		`{"unknown_field":1}`,
	}
	for _, spec := range cases {
		path := writeSpec(t, spec)
		var out bytes.Buffer
		if err := run([]string{"-spec", path}, &out); err == nil {
			t.Errorf("spec %s accepted, want error", spec)
		}
	}
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -spec accepted")
	}
	if err := run([]string{"-spec", "/does/not/exist.json"}, &out); err == nil {
		t.Error("missing spec file accepted")
	}
}
