package main

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobilecache/internal/engine"
	"mobilecache/internal/faultfs"
)

// TestStorageFaultNamesResume: an I/O fault during a checkpointed
// sweep must surface as an IsIOFault error (main maps it to exit 3)
// whose message names -resume — the operator's way forward.
func TestStorageFaultNamesResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "sweep.ckpt")
	opt := options{
		jobs: 1, keepGoing: true, audit: "off",
		checkpointPath: ckpt,
		// The second sync of the journal fails: some cells land, then
		// the disk "breaks".
		fs: faultfs.New(faultfs.NewPlan().ENOSPCStreak(4, 0)),
	}
	spec := Spec{Machines: []string{"baseline-sram"}, Apps: []string{"browser"}, Seeds: []uint64{1, 2, 3}, Accesses: 2000}
	err := sweep(context.Background(), spec, opt, engine.NewCSV(io.Discard), io.Discard)
	if err == nil {
		t.Fatal("sweep over a failing disk succeeded")
	}
	if !faultfs.IsIOFault(err) {
		t.Fatalf("error not classified as an I/O fault (exit 3): %v", err)
	}
	if !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("storage-fault error does not name -resume: %v", err)
	}
	if !strings.Contains(err.Error(), ckpt) {
		t.Fatalf("storage-fault error does not name the journal: %v", err)
	}
}

// TestOutputFileAtomic: -o lands the CSV via atomic rename — complete
// file, no stray temp — and matches the stdout rendering byte for byte.
func TestOutputFileAtomic(t *testing.T) {
	spec := writeSpec(t, `{
		"machines": ["baseline-sram"],
		"apps": ["music"],
		"seeds": [7],
		"accesses": 2000
	}`)
	var viaStdout bytes.Buffer
	if err := run([]string{"-spec", spec, "-audit", "off"}, &viaStdout, io.Discard); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(t.TempDir(), "results.csv")
	if err := run([]string{"-spec", spec, "-audit", "off", "-o", outPath}, io.Discard, io.Discard); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, viaStdout.Bytes()) {
		t.Fatalf("-o file differs from stdout rendering:\n%s\nvs\n%s", got, viaStdout.Bytes())
	}
	if _, err := os.Stat(outPath + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("-o left its temp file behind (stat err %v)", err)
	}
}
