// Performance contract of set-sampled simulation (internal/sample
// through internal/sim and internal/engine). Two claims are checked
// and recorded in BENCH_PR5.json:
//
//  1. replaying a packed trace through a sampled machine costs close
//     to 1/factor of the full replay (BenchmarkSampledReplay sweeps
//     factors 1..16), and
//  2. the strict-audited quick matrix (7 standard machines x 3 apps,
//     warm shared arena, memoization disabled) runs at least 4x
//     faster at -sample 1/8 than exact, while the same grid's
//     validation errors stay within the documented 2% bound.
//
// Regenerate the JSON with
//
//	make bench-json    # also regenerates BENCH_PR4.json
//
// EXPERIMENTS.md documents the methodology and the recorded numbers.
package mobilecache

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"mobilecache/internal/engine"
	"mobilecache/internal/invariant"
	"mobilecache/internal/sample"
	"mobilecache/internal/sim"
	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

// benchSampledReplay measures the per-access cost of replaying one
// packed trace through a machine sampled at the given factor. The
// denominator is raw trace records consumed (not post-filter records),
// so ns/op across factors are directly comparable: a perfect sampler
// would show ns/op shrinking linearly with the factor.
func benchSampledReplay(b *testing.B, spec sample.Spec) {
	b.ReportAllocs()
	store := tracestore.New(0)
	prof := workload.Profiles()[0]
	packed, err := store.Get(prof, 1, replayChunk)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := sim.MachineByName("baseline-sram")
	if err != nil {
		b.Fatal(err)
	}
	m, err := sim.BuildSampled(cfg, spec)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := b.N - done
		if n > replayChunk {
			n = replayChunk
		}
		cur := packed.Cursor()
		if _, err := sim.RunSampledTrace(m, "bench", &cur, uint64(n)); err != nil {
			b.Fatal(err)
		}
		done += n
	}
}

// BenchmarkSampledReplay sweeps the sampling factor; ns/op is per raw
// trace record, so factor=1/8 should land near an eighth of factor=1/1.
func BenchmarkSampledReplay(b *testing.B) {
	for _, f := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("1of%d", f), func(b *testing.B) {
			benchSampledReplay(b, sample.Spec{Factor: f})
		})
	}
}

// runMatrixSampled times the quick matrix through a dedicated engine
// with the given sampling spec. The arena is shared and pre-warmed by
// the caller and memoization is disabled, so the two arms of the
// speedup comparison both measure pure simulation over identical
// cached traces — not trace generation and not memo hits.
func runMatrixSampled(tb testing.TB, store *tracestore.Store, apps []workload.Profile, accesses int, spec sample.Spec) time.Duration {
	tb.Helper()
	var cells []engine.Cell
	for _, name := range sim.StandardMachineNames() {
		cfg, err := sim.MachineByName(name)
		if err != nil {
			tb.Fatal(err)
		}
		for i := range apps {
			cells = append(cells, engine.Cell{
				Machine: name, Config: cfg, App: apps[i].Name, Profile: apps[i],
				Seed: 1*1_000_003 + uint64(i)*7919,
			})
		}
	}
	eng := engine.New(engine.Config{Workers: 4, Store: store, MemoCapacity: -1})
	start := time.Now()
	if _, err := eng.Execute(context.Background(),
		engine.Plan{Cells: cells, Accesses: accesses, Sample: spec}, engine.ExecOptions{}); err != nil {
		tb.Fatal(err)
	}
	return time.Since(start)
}

// sampleBenchReport is the BENCH_PR5.json schema.
type sampleBenchReport struct {
	GoVersion      string  `json:"go_version"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Spec           string  `json:"sample_spec"`
	Matrix         string  `json:"matrix"`
	MatrixWorkers  int     `json:"matrix_workers"`
	MatrixAccesses int     `json:"matrix_accesses_per_cell"`
	Audit          string  `json:"audit_mode"`
	FullSeconds    float64 `json:"matrix_full_seconds"`
	SampledSeconds float64 `json:"matrix_sampled_seconds"`
	Speedup        float64 `json:"matrix_speedup"`
	// Validation errors of the same quick-matrix grid (2 seed bases),
	// from engine.ValidateSample: the worst per-machine relative error
	// of each headline metric.
	MaxMissRateRelErr float64 `json:"validation_max_miss_rate_rel_err"`
	MaxEnergyRelErr   float64 `json:"validation_max_energy_rel_err"`
	Tolerance         float64 `json:"validation_tolerance"`
}

// TestEmitBenchJSONPR5 records the sampling PR's performance and
// accuracy evidence. Like TestEmitBenchJSON it is a measurement, not a
// machine-speed gate, so it only runs when explicitly requested — but
// the two recorded claims it does gate hard are the PR's acceptance
// criteria: >= 4x quick-matrix speedup at 1/8, validation within 2%.
//
//	MC_BENCH_JSON=1 go test -run TestEmitBenchJSONPR5 -count=1 -v .
func TestEmitBenchJSONPR5(t *testing.T) {
	if os.Getenv("MC_BENCH_JSON") == "" {
		t.Skip("set MC_BENCH_JSON=1 to measure and write BENCH_PR5.json")
	}
	restore := sim.SetAuditMode(invariant.ModeStrict)
	defer restore()

	spec := sample.Spec{Factor: 8}
	rep := sampleBenchReport{
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Spec:           spec.String(),
		Matrix:         "7 standard machines x 3 apps",
		MatrixWorkers:  4,
		MatrixAccesses: 80_000,
		Audit:          "strict",
		Tolerance:      0.02,
	}

	apps := workload.Profiles()[:3]
	store := tracestore.New(0)
	// Warm the arena so neither arm pays trace generation, then
	// interleave three timing rounds keeping the best of each arm.
	runMatrixSampled(t, store, apps, rep.MatrixAccesses, sample.Spec{})
	full, sampled := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 3; round++ {
		if d := runMatrixSampled(t, store, apps, rep.MatrixAccesses, sample.Spec{}); d < full {
			full = d
		}
		if d := runMatrixSampled(t, store, apps, rep.MatrixAccesses, spec); d < sampled {
			sampled = d
		}
	}
	rep.FullSeconds = full.Seconds()
	rep.SampledSeconds = sampled.Seconds()
	rep.Speedup = full.Seconds() / sampled.Seconds()

	// The accuracy half of the evidence: the same grid's validation
	// errors (2 seed bases, engine-level aggregation).
	var cells []engine.Cell
	for _, name := range sim.StandardMachineNames() {
		cfg, err := sim.MachineByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := range apps {
			for _, base := range []uint64{1, 2} {
				cells = append(cells, engine.Cell{
					Machine: name, Config: cfg, App: apps[i].Name, Profile: apps[i],
					Seed: base*1_000_003 + uint64(i)*7919,
				})
			}
		}
	}
	eng := engine.New(engine.Config{Workers: 4, Store: store, MemoCapacity: -1})
	v, err := eng.ValidateSample(context.Background(),
		engine.Plan{Cells: cells, Accesses: rep.MatrixAccesses}, spec, rep.Tolerance)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range v.Machines {
		if m.MissRateRelErr > rep.MaxMissRateRelErr {
			rep.MaxMissRateRelErr = m.MissRateRelErr
		}
		if m.EnergyRelErr > rep.MaxEnergyRelErr {
			rep.MaxEnergyRelErr = m.EnergyRelErr
		}
	}

	t.Logf("matrix: full %.3fs, sampled %.3fs, speedup %.2fx", rep.FullSeconds, rep.SampledSeconds, rep.Speedup)
	t.Logf("validation: max miss-rate err %.2f%%, max energy err %.2f%%",
		100*rep.MaxMissRateRelErr, 100*rep.MaxEnergyRelErr)

	if rep.Speedup < 4 {
		t.Errorf("quick-matrix speedup %.2fx below the 4x acceptance bar", rep.Speedup)
	}
	if err := v.Err(); err != nil {
		t.Errorf("validation breach: %v", err)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR5.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
