package mobilecache

import "testing"

func TestFacadeProfiles(t *testing.T) {
	if len(Profiles()) < 10 {
		t.Fatal("expected the ten app profiles")
	}
	p, err := ProfileByName("browser")
	if err != nil || p.Name != "browser" {
		t.Fatalf("ProfileByName: %v %v", p.Name, err)
	}
}

func TestFacadeTrace(t *testing.T) {
	p, _ := ProfileByName("email")
	recs, err := GenerateTrace(p, 1, 1000)
	if err != nil || len(recs) != 1000 {
		t.Fatalf("GenerateTrace: %d records, err %v", len(recs), err)
	}
	kernel := 0
	for _, a := range recs {
		if a.Domain == Kernel {
			kernel++
		}
	}
	if kernel == 0 {
		t.Fatal("no kernel accesses in an interactive app trace")
	}
}

func TestFacadeRun(t *testing.T) {
	p, _ := ProfileByName("browser")
	rep, err := Run(DefaultMachine(), p, 1, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IPC() <= 0 || rep.L2EnergyJ() <= 0 {
		t.Fatalf("degenerate report: ipc=%g energy=%g", rep.IPC(), rep.L2EnergyJ())
	}
}

func TestFacadeMachines(t *testing.T) {
	if len(StandardMachines()) != 7 {
		t.Fatal("expected seven standard machines")
	}
	m, err := StandardMachine("dp-sr")
	if err != nil || m.Name != "dp-sr" {
		t.Fatalf("StandardMachine: %v %v", m.Name, err)
	}
	if _, err := StandardMachine("nope"); err == nil {
		t.Fatal("unknown machine accepted")
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 24 {
		t.Fatalf("expected 24 experiments, got %d", len(ids))
	}
	opts := DefaultExperimentOptions()
	opts.Accesses = 20_000
	opts.Apps = Profiles()[:1]
	res, err := RunExperiment("E5", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 {
		t.Fatal("experiment returned no tables")
	}
}
