// Performance and accuracy contract of segmented intra-cell replay
// (internal/sim.RunSegmented behind engine.ExecOptions.SegmentWorkers).
// Three claims are checked and recorded in BENCH_PR9.json:
//
//  1. the exact replay hot path (with the frame-precompute stage) still
//     runs at the recorded ns/access with zero allocations per access
//     (shares benchReplay with BENCH_PR4.json),
//  2. splitting one long cell into 4 segments and replaying them
//     concurrently scales wall clock with the worker count (the file
//     records GOMAXPROCS — on a single-core host the speedup is ~1x by
//     construction and the recorded numbers say so honestly), and
//  3. the stitched estimate's error against the serial ground truth
//     stays within 2% on L2 miss rate and L2 energy at the warmup each
//     design is documented to need (DESIGN.md, "Segmented replay and
//     the stitching error model").
//
// Regenerate the JSON with
//
//	make bench-replay    # = MC_BENCH_JSON=1 go test -run 'TestEmitBenchJSONPR9$' -count=1 -v .
//
// EXPERIMENTS.md documents the methodology and the recorded numbers.
package mobilecache

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"mobilecache/internal/sim"
	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

// segmentWallRow is one worker-count timing of the segmented cell.
type segmentWallRow struct {
	Workers         int     `json:"workers"`
	Seconds         float64 `json:"seconds"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// segmentErrRow is one machine's audited stitch error at the warmup the
// error model prescribes for it.
type segmentErrRow struct {
	Machine        string  `json:"machine"`
	Warmup         int     `json:"warmup_records"`
	MissRateRelErr float64 `json:"miss_rate_rel_err"`
	EnergyRelErr   float64 `json:"l2_energy_rel_err"`
}

// segmentBenchReport is the BENCH_PR9.json schema.
type segmentBenchReport struct {
	GoVersion   string  `json:"go_version"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	NsPerAccess float64 `json:"replay_ns_per_access"`
	AllocsPerOp int64   `json:"replay_allocs_per_access"`

	Cell          string           `json:"cell"`
	CellAccesses  int              `json:"cell_accesses"`
	Segments      int              `json:"segments"`
	SerialSeconds float64          `json:"serial_seconds"`
	Walls         []segmentWallRow `json:"segmented"`

	StitchTolerance float64         `json:"stitch_tolerance"`
	StitchAccesses  int             `json:"stitch_accesses"`
	StitchErrors    []segmentErrRow `json:"stitch_errors"`
}

func segRelErr(exact, approx float64) float64 {
	if exact == 0 {
		if approx == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(approx-exact) / math.Abs(exact)
}

// TestEmitBenchJSONPR9 records the segmented-replay PR's performance
// and accuracy evidence. Like the other emitters it is a measurement,
// not a machine-speed gate, so it only runs when explicitly requested —
// but the stitch-error rows it records are gated hard at the documented
// 2% bound: an error-model regression fails the run.
//
//	MC_BENCH_JSON=1 go test -run 'TestEmitBenchJSONPR9$' -count=1 -v .
func TestEmitBenchJSONPR9(t *testing.T) {
	if os.Getenv("MC_BENCH_JSON") == "" {
		t.Skip("set MC_BENCH_JSON=1 to measure and write BENCH_PR9.json")
	}

	r := testing.Benchmark(benchReplay)
	rep := segmentBenchReport{
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NsPerAccess:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp:     r.AllocsPerOp(),
		Cell:            "baseline-sram / " + workload.Profiles()[0].Name,
		CellAccesses:    600_000,
		Segments:        4,
		StitchTolerance: 0.02,
		StitchAccesses:  240_000,
	}

	store := tracestore.New(0)
	prof := workload.Profiles()[0]
	cfg, err := sim.MachineByName("baseline-sram")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := store.GetTrace(prof, 1, rep.CellAccesses)
	if err != nil {
		t.Fatal(err)
	}

	// Wall-clock scaling of one long cell. Serial arm is the ordinary
	// replay; segmented arms fix Segments=4 and vary only Workers, so
	// every arm does identical simulation work (same warmup prefixes)
	// and the rows isolate pure concurrency. Best of three interleaved
	// rounds per arm, as in the other emitters.
	workerCounts := []int{1, 2, 4}
	serial := time.Duration(1 << 62)
	walls := map[int]time.Duration{}
	for _, w := range workerCounts {
		walls[w] = time.Duration(1 << 62)
	}
	for round := 0; round < 3; round++ {
		m, err := sim.Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cur := tr.Packed.Cursor()
		start := time.Now()
		sim.RunTrace(m, prof.Name, &cur, uint64(rep.CellAccesses))
		if d := time.Since(start); d < serial {
			serial = d
		}
		for _, w := range workerCounts {
			// Force: the rows record what the stitching machinery itself
			// costs at each width; the serial auto-fallback (PR10) would
			// otherwise replace every arm on this single-core host.
			plan := sim.SegmentPlan{Segments: rep.Segments, Workers: w, Force: true}
			start := time.Now()
			if _, err := sim.RunSegmented(cfg, prof.Name, tr, rep.CellAccesses, plan); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < walls[w] {
				walls[w] = d
			}
		}
	}
	rep.SerialSeconds = serial.Seconds()
	for _, w := range workerCounts {
		rep.Walls = append(rep.Walls, segmentWallRow{
			Workers:         w,
			Seconds:         walls[w].Seconds(),
			SpeedupVsSerial: serial.Seconds() / walls[w].Seconds(),
		})
	}

	// Stitch-error audit: serial ground truth vs the stitched estimate,
	// per machine at the warmup DESIGN.md prescribes. The browser
	// profile's working set is larger than the sim suite's mini profile,
	// so all three rows need the doubled 131072-record prefix (measured
	// knee: 65536 -> 7.96% miss error, 131072 -> 0.88% on baseline-sram
	// at this trace length); dp needs the same length for a different
	// reason — its repartition controller re-converges over ~2 epochs.
	stitchCases := []struct {
		machine string
		warmup  int
	}{
		{"baseline-sram", 131_072},
		{"baseline-stt", 131_072},
		{"dp", 131_072},
	}
	trErr, err := store.GetTrace(prof, 1, rep.StitchAccesses)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range stitchCases {
		mcfg, err := sim.MachineByName(c.machine)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sim.Build(mcfg)
		if err != nil {
			t.Fatal(err)
		}
		cur := trErr.Packed.Cursor()
		exact := sim.RunTrace(m, prof.Name, &cur, uint64(rep.StitchAccesses))
		plan := sim.SegmentPlan{Segments: rep.Segments, Warmup: c.warmup, Force: true}
		seg, err := sim.RunSegmented(mcfg, prof.Name, trErr, rep.StitchAccesses, plan)
		if err != nil {
			t.Fatal(err)
		}
		row := segmentErrRow{
			Machine:        c.machine,
			Warmup:         plan.Norm().Warmup,
			MissRateRelErr: segRelErr(exact.L2.MissRate(), seg.L2.MissRate()),
			EnergyRelErr:   segRelErr(exact.L2EnergyJ(), seg.L2EnergyJ()),
		}
		rep.StitchErrors = append(rep.StitchErrors, row)
		if row.MissRateRelErr > rep.StitchTolerance || row.EnergyRelErr > rep.StitchTolerance {
			t.Errorf("%s stitch error breaches %.0f%%: miss %.2f%%, energy %.2f%%",
				c.machine, 100*rep.StitchTolerance, 100*row.MissRateRelErr, 100*row.EnergyRelErr)
		}
	}

	t.Logf("replay: %.1f ns/access, %d allocs/access", rep.NsPerAccess, rep.AllocsPerOp)
	t.Logf("segmented cell: serial %.3fs; workers 1/2/4: %.3fs / %.3fs / %.3fs (GOMAXPROCS=%d)",
		rep.SerialSeconds, walls[1].Seconds(), walls[2].Seconds(), walls[4].Seconds(), rep.GOMAXPROCS)
	for _, row := range rep.StitchErrors {
		t.Logf("stitch %s (warmup %d): miss err %.3f%%, energy err %.3f%%",
			row.Machine, row.Warmup, 100*row.MissRateRelErr, 100*row.EnergyRelErr)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR9.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
