package mobilecache_test

import (
	"fmt"

	"mobilecache"
)

// ExampleProfiles lists the built-in interactive-app profiles.
func ExampleProfiles() {
	for _, p := range mobilecache.Profiles()[:3] {
		fmt.Println(p.Name)
	}
	// Output:
	// browser
	// email
	// maps
}

// ExampleRun compares the baseline with the paper's static
// multi-retention design on one app.
func ExampleRun() {
	app, _ := mobilecache.ProfileByName("music")
	base, _ := mobilecache.Run(mobilecache.DefaultMachine(), app, 1, 50_000)
	spmr, _ := mobilecache.StandardMachine("sp-mr")
	part, _ := mobilecache.Run(spmr, app, 1, 50_000)
	saving := 1 - part.L2EnergyJ()/base.L2EnergyJ()
	fmt.Println("saves energy:", saving > 0.5)
	fmt.Println("keeps performance:", part.IPC() > base.IPC()*0.9)
	// Output:
	// saves energy: true
	// keeps performance: true
}

// ExampleStandardMachines shows the schemes of the paper's evaluation.
func ExampleStandardMachines() {
	for _, m := range mobilecache.StandardMachines() {
		fmt.Println(m.Name)
	}
	// Output:
	// baseline-sram
	// baseline-stt
	// baseline-drowsy
	// sp
	// sp-mr
	// dp
	// dp-sr
}

// ExampleGenerateTrace materializes a deterministic synthetic trace.
func ExampleGenerateTrace() {
	app, _ := mobilecache.ProfileByName("game")
	recs, _ := mobilecache.GenerateTrace(app, 42, 4)
	again, _ := mobilecache.GenerateTrace(app, 42, 4)
	fmt.Println("records:", len(recs))
	fmt.Println("deterministic:", recs[0] == again[0] && recs[3] == again[3])
	// Output:
	// records: 4
	// deterministic: true
}
