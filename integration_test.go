package mobilecache

import (
	"testing"

	"mobilecache/internal/sim"
	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

// The integration suite runs every standard machine against several
// apps at medium scale and checks cross-component invariants that no
// unit test can see: conservation between CPU, hierarchy, and energy
// accounting, and the paper's qualitative orderings.

func TestIntegrationAllMachinesAllInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep is not -short")
	}
	apps := Profiles()[:4]
	for _, mc := range StandardMachines() {
		for i, app := range apps {
			rep, err := Run(mc, app, uint64(100+i), 80_000)
			if err != nil {
				t.Fatalf("%s on %s: %v", app.Name, mc.Name, err)
			}
			checkInvariants(t, mc.Name, app.Name, rep)
		}
	}
}

func checkInvariants(t *testing.T, machine, app string, rep RunReport) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf("%s on %s: "+format, append([]any{app, machine}, args...)...)
	}

	// Timing conservation.
	if rep.CPU.Cycles != rep.CPU.Instructions+rep.CPU.StallCycles {
		fail("cycles %d != instructions %d + stalls %d", rep.CPU.Cycles, rep.CPU.Instructions, rep.CPU.StallCycles)
	}
	if rep.IPC() <= 0 || rep.IPC() > 1 {
		fail("IPC %g out of range", rep.IPC())
	}

	// Cache accounting.
	for _, d := range []trace.Domain{trace.User, trace.Kernel} {
		if rep.L2.Hits[d]+rep.L2.Misses[d] != rep.L2.Accesses[d] {
			fail("L2 domain %v accounting broken", d)
		}
	}
	if mr := rep.L2.MissRate(); mr < 0 || mr > 1 {
		fail("L2 miss rate %g out of range", mr)
	}

	// DRAM demand traffic matches L2 misses; every L2 miss fetches
	// exactly one block (writebacks allocate without fetching).
	demandMisses := uint64(0)
	for _, d := range []trace.Domain{trace.User, trace.Kernel} {
		demandMisses += rep.L2.Misses[d]
	}
	if rep.DRAMReads > demandMisses {
		fail("DRAM reads %d exceed L2 misses %d", rep.DRAMReads, demandMisses)
	}

	// Energy sanity: every bucket non-negative, total consistent.
	bd := rep.Energy.L2
	for name, v := range map[string]float64{
		"read": bd.ReadJ, "write": bd.WriteJ, "leakage": bd.LeakageJ, "refresh": bd.RefreshJ,
	} {
		if v < 0 {
			fail("negative %s energy %g", name, v)
		}
	}
	if bd.Total() <= 0 {
		fail("no L2 energy accumulated")
	}
	if rep.Energy.TotalJ() < bd.Total() {
		fail("hierarchy total below L2 total")
	}

	// Capacity sanity.
	if rep.L2PoweredBytes > rep.L2InstalledBytes {
		fail("powered %d exceeds installed %d", rep.L2PoweredBytes, rep.L2InstalledBytes)
	}

	// Retention safety: no configuration may silently lose dirty data.
	if rep.L2.DirtyExpiries != 0 {
		fail("%d dirty lines expired", rep.L2.DirtyExpiries)
	}
}

func TestIntegrationMultiAppSessionOnDynamic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep is not -short")
	}
	src, err := workload.MultiAppSession([]string{"browser", "music", "game"}, 7, 2000, 240_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sim.MachineByName("dp-sr")
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := sim.RunTrace(m, "session", src, 0)
	checkInvariants(t, "dp-sr", "session", rep)
	if len(rep.History) < 3 {
		t.Fatalf("controller made only %d decisions over a 3-app session", len(rep.History))
	}
	// Context switches between user address spaces must not starve the
	// kernel allocation: kernel blocks are shared across apps.
	last := rep.History[len(rep.History)-1]
	if last.KernelWays < 1 || last.UserWays < 1 {
		t.Fatalf("degenerate final allocation: %+v", last)
	}
}

func TestIntegrationPaperOrderings(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep is not -short")
	}
	app, err := ProfileByName("social")
	if err != nil {
		t.Fatal(err)
	}
	energyOf := map[string]float64{}
	ipcOf := map[string]float64{}
	for _, name := range []string{"baseline-sram", "baseline-stt", "baseline-drowsy", "sp", "sp-mr", "dp-sr"} {
		mc, err := StandardMachine(name)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(mc, app, 3, 150_000)
		if err != nil {
			t.Fatal(err)
		}
		energyOf[name] = rep.L2EnergyJ()
		ipcOf[name] = rep.IPC()
	}
	base := energyOf["baseline-sram"]
	// The paper's qualitative chain.
	if !(energyOf["sp"] < base) {
		t.Error("sp does not save vs baseline")
	}
	if !(energyOf["sp-mr"] < energyOf["sp"]) {
		t.Error("multi-retention does not beat SRAM partition")
	}
	if !(energyOf["dp-sr"] < energyOf["sp-mr"]) {
		t.Error("dynamic short-retention does not beat static multi-retention")
	}
	// The naive full-size STT swap helps but less than the partitioned
	// designs (the partition/shrink matters, not just the technology).
	if !(energyOf["baseline-stt"] < base && energyOf["sp-mr"] < energyOf["baseline-stt"]) {
		t.Error("technology swap alone outperforms the designed partition")
	}
	// Drowsy helps but cannot reach the technology change.
	if !(energyOf["baseline-drowsy"] < base && energyOf["sp-mr"] < energyOf["baseline-drowsy"]) {
		t.Error("drowsy ordering wrong")
	}
	// Performance: nothing loses more than 15% on this app.
	for name, ipc := range ipcOf {
		if ipc < ipcOf["baseline-sram"]*0.85 {
			t.Errorf("%s loses too much performance: %g vs %g", name, ipc, ipcOf["baseline-sram"])
		}
	}
}
