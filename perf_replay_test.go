// Performance contract of the frame-batched replay kernel
// (mem.AccessFrame behind cpu.Run): the hot path decodes packed frames
// straight into precomputed records and replays L1 hits without a
// Lookup call, a Result struct, or any per-access stats or energy
// write. Two artifacts live here:
//
//   - TestReplaySmoke, the CI-safe structural gate (make
//     bench-replay-smoke): replay must stay allocation-free and under
//     a budget ~40x above the recorded steady state, so it catches a
//     reintroduced per-access allocation or interface round-trip
//     without ever failing on a slow or noisy runner.
//   - TestEmitBenchJSONPR10, the measurement emitter for
//     BENCH_PR10.json: minimum ns/access over several benchmark
//     rounds (the recording host is a 1-vCPU cloud machine with heavy
//     steal — the minimum estimates the true cost, the median the
//     experience; EXPERIMENTS.md documents the protocol).
//
// Regenerate the JSON with
//
//	make bench-json    # includes TestEmitBenchJSONPR10
package mobilecache

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"mobilecache/internal/sim"
	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

// replaySmokeBudgetNs is the structural ceiling for the smoke gate:
// generous enough that no healthy build on any CI runner approaches
// it (recorded steady state is ~50 ns/access on the slowest host this
// repo has seen), low enough that a per-access allocation, a decode
// regression to per-record interface calls, or an accidental
// quadratic would blow through it.
const replaySmokeBudgetNs = 2000

// TestReplaySmoke is the bench-replay-smoke CI gate.
func TestReplaySmoke(t *testing.T) {
	const accesses = 200_000
	store := tracestore.New(0)
	prof := workload.Profiles()[0]
	packed, err := store.Get(prof, 1, accesses)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sim.MachineByName("baseline-sram")
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Allocation structure: a replay allocates O(1) per run (the report
	// and its histograms), never O(accesses). The budget is hundreds of
	// allocations against hundreds of thousands of accesses, so any
	// per-access allocation fails by three orders of magnitude.
	allocs := testing.AllocsPerRun(3, func() {
		cur := packed.Cursor()
		sim.RunTrace(m, "smoke", &cur, accesses)
	})
	if allocs > 500 {
		t.Errorf("replay of %d accesses allocated %.0f times; per-access allocation regression", accesses, allocs)
	}

	// Throughput structure: best of three rounds against the ~40x
	// budget, so scheduler noise cannot fail a healthy build.
	best := time.Duration(1 << 62)
	for round := 0; round < 3; round++ {
		cur := packed.Cursor()
		start := time.Now()
		sim.RunTrace(m, "smoke", &cur, accesses)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	nsPerAccess := float64(best.Nanoseconds()) / float64(accesses)
	t.Logf("replay smoke: %.1f ns/access (budget %d), %.0f allocs/run", nsPerAccess, replaySmokeBudgetNs, allocs)
	if nsPerAccess > replaySmokeBudgetNs {
		t.Errorf("replay at %.1f ns/access exceeds the %d ns structural budget", nsPerAccess, replaySmokeBudgetNs)
	}
}

// replayBenchReport is the BENCH_PR10.json schema.
type replayBenchReport struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	// MinNsPerAccess is the minimum over Rounds benchmark rounds — the
	// steal-noise-resistant estimate of the true per-access cost on
	// this host. MedianNsPerAccess is the middle round, recorded so the
	// noise floor is visible in the artifact.
	MinNsPerAccess    float64 `json:"replay_min_ns_per_access"`
	MedianNsPerAccess float64 `json:"replay_median_ns_per_access"`
	Rounds            int     `json:"rounds"`
	AllocsPerOp       int64   `json:"replay_allocs_per_access"`

	// PR9NsPerAccess is the number BENCH_PR9.json recorded for the same
	// benchmark before the frame kernel; SpeedupVsPR9 is against the
	// minimum.
	PR9NsPerAccess float64 `json:"pr9_ns_per_access"`
	SpeedupVsPR9   float64 `json:"speedup_vs_pr9"`
}

// TestEmitBenchJSONPR10 records the frame-kernel PR's performance
// evidence. Like the other emitters it is a measurement, not a
// machine-speed gate, so it only runs when explicitly requested:
//
//	MC_BENCH_JSON=1 go test -run 'TestEmitBenchJSONPR10$' -count=1 -v .
func TestEmitBenchJSONPR10(t *testing.T) {
	if os.Getenv("MC_BENCH_JSON") == "" {
		t.Skip("set MC_BENCH_JSON=1 to measure and write BENCH_PR10.json")
	}

	const rounds = 9
	ns := make([]float64, 0, rounds)
	var allocs int64
	for i := 0; i < rounds; i++ {
		r := testing.Benchmark(benchReplay)
		ns = append(ns, float64(r.T.Nanoseconds())/float64(r.N))
		allocs = r.AllocsPerOp()
	}
	// Insertion sort; rounds is tiny.
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}

	rep := replayBenchReport{
		GoVersion:         runtime.Version(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		MinNsPerAccess:    ns[0],
		MedianNsPerAccess: ns[len(ns)/2],
		Rounds:            rounds,
		AllocsPerOp:       allocs,
		PR9NsPerAccess:    68.8,
	}
	rep.SpeedupVsPR9 = rep.PR9NsPerAccess / rep.MinNsPerAccess

	t.Logf("replay: min %.1f ns/access, median %.1f over %d rounds, %d allocs/access (%.2fx vs PR9's %.1f)",
		rep.MinNsPerAccess, rep.MedianNsPerAccess, rep.Rounds, rep.AllocsPerOp, rep.SpeedupVsPR9, rep.PR9NsPerAccess)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR10.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
