GO ?= go

.PHONY: build test check bench bench-json bench-contention bench-contention-smoke bench-e21 bench-replay bench-replay-smoke profile-replay serve-smoke torture clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: gofmt cleanliness, vet, the full test
# suite, a race-enabled short pass (the engine/runner/chaos tests are
# where races would hide), fuzz smokes over the crash-recovery scanner
# and the invariant auditor, the golden-audit gate (the quick
# experiment matrix must be conservation-clean under strict audit),
# the sampling validation gate (1/8 set sampling within 2% on every
# standard machine) and the segmented-replay equivalence gate (exact
# oracle mode must be bit-identical to serial replay on every standard
# machine, and ValidateSegmented must report zero miss-rate error).
check:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt: needs formatting:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/engine/ ./internal/runner/ ./internal/tracestore/ ./internal/shardlru/ ./internal/sim/ ./internal/sample/ ./internal/checkpoint/ ./internal/faultfs/ ./internal/invariant/ ./internal/jobs/ ./internal/cpu/ ./internal/trace/ ./internal/mem/ ./internal/core/ ./internal/cache/ ./internal/energy/ ./internal/sttram/ ./cmd/mcserved/ ./cmd/mcsweep/
	$(GO) test -run '^$$' -fuzz FuzzJournalDecode -fuzztime 5s ./internal/checkpoint/
	$(GO) test -run '^$$' -fuzz FuzzAuditReport -fuzztime 5s ./internal/invariant/
	$(GO) test -run TestGoldenAuditQuickMatrix -count=1 ./internal/experiments/
	$(GO) test -run TestSampleValidationQuickMatrix -count=1 ./internal/experiments/
	$(GO) test -run TestRunSegmentedExactMatchesSerial -count=1 ./internal/sim/
	$(GO) test -run 'TestValidateSegmentedOracle|TestSegmentedSmoke' -count=1 ./internal/engine/

bench:
	$(GO) test -bench=. -benchmem

# bench-json regenerates BENCH_PR4.json (pipeline performance: replay
# ns+allocs per access, quick-matrix speedup of the engine's shared
# arena vs a trace-regenerating baseline), BENCH_PR5.json (set
# sampling: quick-matrix speedup and validation errors at 1/8) and
# BENCH_PR10.json (frame-kernel replay: min/median ns per access over
# interleaved rounds — see perf_replay_test.go for the noise protocol).
bench-json:
	MC_BENCH_JSON=1 $(GO) test -run 'TestEmitBenchJSON$$|TestEmitBenchJSONPR5|TestEmitBenchJSONPR10$$' -count=1 -v .

# bench-contention regenerates BENCH_PR7.json: 32 goroutines hammering
# the warm run memo and warm trace arena, global-lock baseline vs the
# lock-striped sharded caches (throughput and aggregate mutex wait;
# see perf_contention_test.go for the methodology).
bench-contention:
	MC_BENCH_JSON=1 $(GO) test -run TestEmitBenchJSONPR7 -count=1 -v .

# bench-contention-smoke is the CI-safe structural pass: tiny op
# counts, no throughput thresholds, verifies the harness and the
# report schema (also part of the ordinary test suite).
bench-contention-smoke:
	$(GO) test -run TestContentionSmoke -short -count=1 -v .

# bench-replay regenerates BENCH_PR9.json: exact-path replay ns/access
# with the frame-precompute stage, segmented single-cell wall clock and
# speedup at 1/2/4 workers, and the audited stitch errors at the
# default warmup (see perf_segment_test.go for the methodology; the
# file records GOMAXPROCS — on a single-core host the speedup is ~1x
# by construction).
bench-replay:
	MC_BENCH_JSON=1 $(GO) test -run 'TestEmitBenchJSONPR9$$' -count=1 -v .

# bench-replay-smoke is the CI perf-regression gate for the replay hot
# path: a short replay must stay allocation-free and under a generous
# structural ns/access budget (~40x the recorded steady state), so it
# catches a reintroduced per-access allocation or a decode regression
# without ever failing on a slow runner (also part of the ordinary
# test suite).
bench-replay-smoke:
	$(GO) test -run TestReplaySmoke -count=1 -v .

# profile-replay captures a CPU profile of the replay benchmark and
# dumps the pprof top table into results/ — the artifact the README's
# profiling notes and DESIGN.md's kernel-floor analysis reference.
profile-replay:
	@mkdir -p results
	$(GO) test -run '^$$' -bench BenchmarkPackedReplay -benchtime 2s \
		-cpuprofile results/replay.prof -o results/replay.test .
	$(GO) tool pprof -top -nodecount 20 results/replay.test results/replay.prof \
		| tee results/replay_pprof_top.txt

# bench-e21 regenerates the retention-fault sensitivity sweep.
bench-e21:
	$(GO) test -bench=BenchmarkE21RetentionFaults -benchmem

# torture is the crash-consistency harness: it enumerates every
# filesystem op of a checkpointed sweep and of the daemon job
# lifecycle, injects ENOSPC / fsync-EIO / short writes / simulated
# power loss at each one, reboots onto healthy storage and requires a
# byte-identical CSV or a structured error — never a silent partial.
# Race-enabled and bounded (single-digit seconds).
torture:
	$(GO) test -race -count=1 ./internal/faultfs/ ./internal/faultfs/torture/

# serve-smoke boots cmd/mcserved against a scratch store, submits a
# tiny sweep over HTTP, streams the results, downloads the CSV, checks
# /healthz, /readyz and /metrics, and requires a clean SIGTERM drain.
serve-smoke:
	sh scripts/serve_smoke.sh

clean:
	$(GO) clean ./...
