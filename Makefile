GO ?= go

.PHONY: build test check bench bench-e21 clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: vet, the full test suite, and a
# race-enabled short pass (the runner/chaos tests are where races
# would hide).
check:
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem

# bench-e21 regenerates the retention-fault sensitivity sweep.
bench-e21:
	$(GO) test -bench=BenchmarkE21RetentionFaults -benchmem

clean:
	$(GO) clean ./...
