GO ?= go

.PHONY: build test check bench bench-json bench-e21 serve-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the pre-commit gate: gofmt cleanliness, vet, the full test
# suite, a race-enabled short pass (the engine/runner/chaos tests are
# where races would hide), fuzz smokes over the crash-recovery scanner
# and the invariant auditor, the golden-audit gate (the quick
# experiment matrix must be conservation-clean under strict audit) and
# the sampling validation gate (1/8 set sampling within 2% on every
# standard machine).
check:
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt: needs formatting:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet ./...
	$(GO) test ./...
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/engine/ ./internal/runner/ ./internal/tracestore/ ./internal/sim/ ./internal/sample/ ./internal/checkpoint/ ./internal/invariant/ ./internal/jobs/ ./cmd/mcserved/
	$(GO) test -run '^$$' -fuzz FuzzJournalDecode -fuzztime 5s ./internal/checkpoint/
	$(GO) test -run '^$$' -fuzz FuzzAuditReport -fuzztime 5s ./internal/invariant/
	$(GO) test -run TestGoldenAuditQuickMatrix -count=1 ./internal/experiments/
	$(GO) test -run TestSampleValidationQuickMatrix -count=1 ./internal/experiments/

bench:
	$(GO) test -bench=. -benchmem

# bench-json regenerates BENCH_PR4.json (pipeline performance: replay
# ns+allocs per access, quick-matrix speedup of the engine's shared
# arena vs a trace-regenerating baseline) and BENCH_PR5.json (set
# sampling: quick-matrix speedup and validation errors at 1/8).
bench-json:
	MC_BENCH_JSON=1 $(GO) test -run 'TestEmitBenchJSON|TestEmitBenchJSONPR5' -count=1 -v .

# bench-e21 regenerates the retention-fault sensitivity sweep.
bench-e21:
	$(GO) test -bench=BenchmarkE21RetentionFaults -benchmem

# serve-smoke boots cmd/mcserved against a scratch store, submits a
# tiny sweep over HTTP, streams the results, downloads the CSV, checks
# /healthz, /readyz and /metrics, and requires a clean SIGTERM drain.
serve-smoke:
	sh scripts/serve_smoke.sh

clean:
	$(GO) clean ./...
