// Performance contract of the execution pipeline (internal/engine over
// internal/tracestore) and the zero-allocation replay hot path. Two
// claims are checked and recorded in BENCH_PR4.json:
//
//  1. replaying a packed trace through a machine allocates nothing per
//     access (BenchmarkPackedReplay with -benchmem), and
//  2. a standard-machine x app matrix at -jobs=4 runs materially faster
//     through the engine (all cells sharing its trace arena) than
//     hand-wired with per-cell trace regeneration — i.e. the engine
//     refactor preserved the PR 2 arena speedup.
//
// Regenerate the JSON with
//
//	make bench-json    # = MC_BENCH_JSON=1 go test -run TestEmitBenchJSON -count=1 -v .
//
// EXPERIMENTS.md documents the methodology and the recorded numbers.
package mobilecache

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"mobilecache/internal/engine"
	"mobilecache/internal/runner"
	"mobilecache/internal/sim"
	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

// replayChunk is the packed-trace length the replay benchmark cycles
// through; large enough that per-report costs amortize to zero against
// the per-access path.
const replayChunk = 200_000

// benchReplay measures the cached-replay hot path: machine built once,
// trace packed once, then every iteration is one simulated access
// decoded straight from the arena. This is the per-cell marginal cost
// a sweep pays after the first machine has generated the trace.
func benchReplay(b *testing.B) {
	b.ReportAllocs()
	store := tracestore.New(0)
	prof := workload.Profiles()[0]
	packed, err := store.Get(prof, 1, replayChunk)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := sim.MachineByName("baseline-sram")
	if err != nil {
		b.Fatal(err)
	}
	m, err := sim.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := b.N - done
		if n > replayChunk {
			n = replayChunk
		}
		cur := packed.Cursor()
		sim.RunTrace(m, "bench", &cur, uint64(n))
		done += n
	}
}

// BenchmarkPackedReplay is the -benchmem target for the zero-allocation
// claim: ns/op and allocs/op are per simulated access.
func BenchmarkPackedReplay(b *testing.B) { benchReplay(b) }

// matrixCells builds the quick-matrix grid: every standard machine on
// the first three app profiles, per-app seeds derived the same way the
// experiments derive them.
func matrixCells(apps []workload.Profile) []runner.Cell {
	var cells []runner.Cell
	for _, name := range sim.StandardMachineNames() {
		for i := range apps {
			cells = append(cells, runner.Cell{Machine: name, App: apps[i].Name, Seed: 1*1_000_003 + uint64(i)*7919})
		}
	}
	return cells
}

// runMatrixRegen is the reference arm: the same grid hand-wired on the
// bare worker pool with no trace arena, so every cell regenerates its
// trace — what a sweep cost before the shared arena existed.
func runMatrixRegen(tb testing.TB, apps []workload.Profile, accesses int) time.Duration {
	tb.Helper()
	profiles := make(map[string]workload.Profile, len(apps))
	for _, p := range apps {
		profiles[p.Name] = p
	}
	start := time.Now()
	_, err := runner.Run(context.Background(), runner.Config{Workers: 4}, matrixCells(apps),
		func(_ context.Context, c runner.Cell) (sim.RunReport, error) {
			cfg, err := sim.MachineByName(c.Machine)
			if err != nil {
				return sim.RunReport{}, err
			}
			return sim.RunWorkloadFrom(nil, cfg, profiles[c.App], c.Seed, accesses)
		})
	if err != nil {
		tb.Fatal(err)
	}
	return time.Since(start)
}

// runMatrixEngine is the measured arm: the same grid through a fresh
// engine (cold arena, cold memo), exactly as the production front ends
// run it. Returns the wall clock and the arena stats.
func runMatrixEngine(tb testing.TB, apps []workload.Profile, accesses int) (time.Duration, tracestore.Stats) {
	tb.Helper()
	var cells []engine.Cell
	for _, name := range sim.StandardMachineNames() {
		cfg, err := sim.MachineByName(name)
		if err != nil {
			tb.Fatal(err)
		}
		for i := range apps {
			cells = append(cells, engine.Cell{
				Machine: name, Config: cfg, App: apps[i].Name, Profile: apps[i],
				Seed: 1*1_000_003 + uint64(i)*7919,
			})
		}
	}
	eng := engine.New(engine.Config{Workers: 4})
	start := time.Now()
	sum, err := eng.Execute(context.Background(),
		engine.Plan{Cells: cells, Accesses: accesses}, engine.ExecOptions{})
	if err != nil {
		tb.Fatal(err)
	}
	return time.Since(start), sum.Store
}

// benchReport is the BENCH_PR4.json schema.
type benchReport struct {
	GoVersion      string  `json:"go_version"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	NsPerAccess    float64 `json:"replay_ns_per_access"`
	AllocsPerOp    int64   `json:"replay_allocs_per_access"`
	BytesPerOp     int64   `json:"replay_bytes_per_access"`
	Matrix         string  `json:"matrix"`
	MatrixWorkers  int     `json:"matrix_workers"`
	MatrixAccesses int     `json:"matrix_accesses_per_cell"`
	RegenSeconds   float64 `json:"matrix_regen_seconds"`
	CachedSeconds  float64 `json:"matrix_cached_seconds"`
	Speedup        float64 `json:"matrix_speedup"`
	Generated      uint64  `json:"store_generated"`
	Hits           uint64  `json:"store_hits"`
	Misses         uint64  `json:"store_misses"`
}

// TestEmitBenchJSON records the PR's performance evidence. It is a
// measurement, not a pass/fail gate on machine speed, so it only runs
// when explicitly requested:
//
//	MC_BENCH_JSON=1 go test -run TestEmitBenchJSON -count=1 -v .
func TestEmitBenchJSON(t *testing.T) {
	if os.Getenv("MC_BENCH_JSON") == "" {
		t.Skip("set MC_BENCH_JSON=1 to measure and write BENCH_PR4.json")
	}

	r := testing.Benchmark(benchReplay)
	rep := benchReport{
		GoVersion:      runtime.Version(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		NsPerAccess:    float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp:    r.AllocsPerOp(),
		BytesPerOp:     r.AllocedBytesPerOp(),
		Matrix:         "7 standard machines x 3 apps",
		MatrixWorkers:  4,
		MatrixAccesses: 80_000,
	}

	apps := workload.Profiles()[:3]
	// Interleave three timing rounds and keep the best of each mode, so
	// one background hiccup cannot fabricate or erase the speedup. The
	// engine arm gets a fresh engine each round (cold arena and memo):
	// it measures one sweep's first pass, not memo replays.
	regen, cached := time.Duration(1<<62), time.Duration(1<<62)
	var st tracestore.Stats
	for round := 0; round < 3; round++ {
		if d := runMatrixRegen(t, apps, rep.MatrixAccesses); d < regen {
			regen = d
		}
		d, stats := runMatrixEngine(t, apps, rep.MatrixAccesses)
		if d < cached {
			cached = d
		}
		st = stats
	}
	rep.RegenSeconds = regen.Seconds()
	rep.CachedSeconds = cached.Seconds()
	rep.Speedup = regen.Seconds() / cached.Seconds()
	rep.Generated, rep.Hits, rep.Misses = st.Generated, st.Hits, st.Misses

	t.Logf("replay: %.1f ns/access, %d allocs/access", rep.NsPerAccess, rep.AllocsPerOp)
	t.Logf("matrix: regen %.3fs, cached %.3fs, speedup %.2fx (store: %d generated, %d hits)",
		rep.RegenSeconds, rep.CachedSeconds, rep.Speedup, rep.Generated, rep.Hits)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR4.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
