// Retention sweep: explore the STT-RAM retention/write-cost trade-off
// for the kernel segment, the design space behind the paper's
// multi-retention choice.
//
// For each retention target the example derives device parameters from
// the thermal-stability relation, runs the static partition with that
// kernel segment, and prints where the energy minimum falls.
//
// Run with:
//
//	go run ./examples/retentionsweep
package main

import (
	"fmt"
	"log"

	"mobilecache/internal/energy"
	"mobilecache/internal/experiments"
	"mobilecache/internal/sttram"
	"mobilecache/internal/workload"
)

func main() {
	// The physics: retention grows exponentially with the thermal
	// stability factor delta, and the write current needed grows with
	// delta too. Print the relation first.
	fmt.Println("thermal stability -> retention:")
	for _, delta := range []float64{35, 40, 45, 50, 55} {
		fmt.Printf("  delta=%2.0f  retention=%10.3g s\n", delta, sttram.RetentionFromStability(delta))
	}

	fmt.Println("\nderived device parameters across retention targets:")
	fmt.Printf("  %-12s %-10s %-10s\n", "retention", "write pJ", "write cyc")
	for _, ret := range []float64{26.5e-6, 2.65e-3, 0.265, 3.24, 3600} {
		p := energy.ParamsForRetention(ret)
		fmt.Printf("  %-12.3g %-10.0f %-10d\n", ret, p.WritePJ, p.WriteCycles)
	}

	// Full sweep via the experiment harness (figure E10).
	apps := workload.Profiles()
	res, err := experiments.Run("E10", experiments.Options{
		Accesses: 300_000, Seed: 1, Apps: apps[:1],
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, tb := range res.Tables {
		fmt.Print(tb)
	}
	for _, n := range res.Notes {
		fmt.Println("finding:", n)
	}
}
