// Multi-app session: three apps run concurrently under round-robin
// scheduling — distinct user address spaces, one shared kernel — and
// the four main designs are compared on the resulting stream.
//
// This is the stimulus closest to how a phone actually runs: user
// working sets compete and get cold-switched, while kernel blocks stay
// warm across context switches, which is exactly the asymmetry the
// paper's user/kernel partitioning exploits.
//
// Run with:
//
//	go run ./examples/multiapp
package main

import (
	"fmt"
	"log"

	"mobilecache/internal/sim"
	"mobilecache/internal/workload"
)

func main() {
	apps := []string{"browser", "social", "music"}
	const total = 450_000
	const quantum = 3000 // accesses per scheduling slice

	fmt.Printf("session: %v, %d accesses, quantum %d\n\n", apps, total, quantum)

	type row struct {
		name   string
		energy float64
		ipc    float64
		kernel float64
	}
	var rows []row
	for _, name := range []string{"baseline-sram", "baseline-drowsy", "sp-mr", "dp-sr"} {
		// Each machine replays the identical session stream.
		src, err := workload.MultiAppSession(apps, 11, quantum, total)
		if err != nil {
			log.Fatal(err)
		}
		cfg, err := sim.MachineByName(name)
		if err != nil {
			log.Fatal(err)
		}
		m, err := sim.Build(cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep := sim.RunTrace(m, "session", src, 0)
		rows = append(rows, row{name, rep.L2EnergyJ(), rep.IPC(), rep.L2.KernelShare()})
	}

	base := rows[0]
	fmt.Printf("%-16s %12s %10s %12s %10s\n", "scheme", "L2 energy", "IPC", "norm energy", "kernel share")
	for _, r := range rows {
		fmt.Printf("%-16s %10.3g J %10.4f %12.3f %11.1f%%\n",
			r.name, r.energy, r.ipc, r.energy/base.energy, r.kernel*100)
	}
	fmt.Println("\nkernel blocks survive the context switches (shared address space),")
	fmt.Println("so the kernel segment/ways stay effective across the whole session.")
}
