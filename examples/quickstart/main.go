// Quickstart: simulate one interactive app on the paper's baseline and
// on the static-partition design, and compare L2 energy and IPC.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mobilecache"
)

func main() {
	// Pick an app profile. The library ships ten profiles modeled on
	// the interactive smartphone apps the paper evaluates.
	app, err := mobilecache.ProfileByName("browser")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("app %q: %s\n\n", app.Name, app.Description)

	// The baseline: a 1MB 16-way SRAM L2, the machine the paper
	// normalizes everything to.
	baseline := mobilecache.DefaultMachine()

	// The multi-retention static partition (the paper's "static
	// technique"): 512KB user + 256KB kernel segments in STT-RAM.
	spmr, err := mobilecache.StandardMachine("sp-mr")
	if err != nil {
		log.Fatal(err)
	}

	const seed, accesses = 1, 400_000
	base, err := mobilecache.Run(baseline, app, seed, accesses)
	if err != nil {
		log.Fatal(err)
	}
	part, err := mobilecache.Run(spmr, app, seed, accesses)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %14s %14s\n", "", baseline.Name, spmr.Name)
	fmt.Printf("%-22s %14.4f %14.4f\n", "IPC", base.IPC(), part.IPC())
	fmt.Printf("%-22s %13.1f%% %13.1f%%\n", "L2 miss rate", base.L2.MissRate()*100, part.L2.MissRate()*100)
	fmt.Printf("%-22s %13.1f%% %13.1f%%\n", "L2 kernel share", base.L2.KernelShare()*100, part.L2.KernelShare()*100)
	fmt.Printf("%-22s %13.3g J %13.3g J\n", "L2 energy", base.L2EnergyJ(), part.L2EnergyJ())

	saving := 1 - part.L2EnergyJ()/base.L2EnergyJ()
	loss := 1 - part.IPC()/base.IPC()
	fmt.Printf("\nstatic multi-retention partition: %.1f%% L2 energy saving at %.1f%% performance loss\n",
		saving*100, loss*100)
	fmt.Println("(paper reports ~75% saving at ~2% loss for the static technique)")
}
