// Dynamic partition walkthrough: drive the paper's dynamic design with
// a usage session that moves between apps, and watch the controller
// reallocate and power-gate ways epoch by epoch.
//
// Run with:
//
//	go run ./examples/dynamicpartition
package main

import (
	"fmt"
	"log"
	"strings"

	"mobilecache/internal/sim"
	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

func main() {
	// A session: heavy browsing, then music in the background, then a
	// game — demand for L2 capacity changes at each transition.
	session := []string{"browser", "music", "game"}
	const perApp = 150_000
	const seed = 11

	var gens []trace.Source
	for i, name := range session {
		app, err := workload.ProfileByName(name)
		if err != nil {
			log.Fatal(err)
		}
		g, err := workload.NewGenerator(app, seed+uint64(i), uint64(perApp/app.Phases))
		if err != nil {
			log.Fatal(err)
		}
		gens = append(gens, g)
	}
	src := workload.NewPhasedSource(perApp, gens...)

	cfg, err := sim.MachineByName("dp-sr")
	if err != nil {
		log.Fatal(err)
	}
	m, err := sim.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep := sim.RunTrace(m, strings.Join(session, "->"), src, 0)

	fmt.Printf("session %s on %s (%d L2 accesses)\n\n", rep.Workload, rep.Machine, rep.L2.TotalAccesses())
	fmt.Println("epoch  at access   user ways         kernel ways       gated")
	for _, d := range rep.History {
		fmt.Printf("%5d  %9d  %-16s  %-16s  %d\n",
			d.Epoch, d.AtAccess,
			strings.Repeat("u", d.UserWays),
			strings.Repeat("k", d.KernelWays),
			d.GatedWays)
	}

	fmt.Printf("\nfinal powered capacity: %d KB of %d KB installed\n",
		rep.L2PoweredBytes>>10, rep.L2InstalledBytes>>10)
	fmt.Printf("repartition flush writebacks: %d\n", rep.FlushWritebacks)
	fmt.Printf("L2 energy: %.3g J (leakage %.3g J, refresh %.3g J)\n",
		rep.Energy.L2.Total(), rep.Energy.L2.LeakageJ, rep.Energy.L2.RefreshJ)
	fmt.Printf("IPC: %.4f\n", rep.IPC())
}
