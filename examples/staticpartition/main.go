// Static partition walkthrough: capture an app's L2-level access
// stream, run the paper's segment-sizing search, and assemble the
// multi-retention static design from the result.
//
// This is the full "static technique" pipeline of the paper:
//
//  1. observe that user and kernel accesses interfere in a shared L2;
//  2. sweep isolated per-domain segment sizes against the captured L2
//     stream and pick the smallest pair that holds the baseline miss
//     rate (the shrink);
//  3. match each segment's STT-RAM retention class to its measured
//     block lifetimes.
//
// Run with:
//
//	go run ./examples/staticpartition
package main

import (
	"fmt"
	"log"

	"mobilecache/internal/cache"
	"mobilecache/internal/config"
	"mobilecache/internal/core"
	"mobilecache/internal/sim"
	"mobilecache/internal/sttram"
	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

func main() {
	app, err := workload.ProfileByName("social")
	if err != nil {
		log.Fatal(err)
	}
	const seed, accesses = 7, 400_000

	// Step 1: run the baseline and capture the L2-level stream through
	// the hierarchy tap (demand fills + writebacks, with domains).
	baselineCfg := config.Default()
	m, err := sim.Build(baselineCfg)
	if err != nil {
		log.Fatal(err)
	}
	var l2stream []trace.Access
	m.Hier.L2Tap = func(a trace.Access) { l2stream = append(l2stream, a) }
	gen, err := workload.NewGenerator(app, seed, uint64(accesses/app.Phases))
	if err != nil {
		log.Fatal(err)
	}
	baseRep := sim.RunTrace(m, app.Name, trace.NewLimitSource(gen, accesses), 0)
	fmt.Printf("baseline: %d L2 accesses, miss rate %.1f%%, %d cross-domain evictions\n",
		baseRep.L2.TotalAccesses(), baseRep.L2.MissRate()*100, baseRep.L2.InterferenceEvictions)

	// Step 2: sizing search over power-of-two segment candidates.
	baseSeg := core.SegmentConfig{Name: "base", SizeBytes: 1 << 20, Ways: 16, BlockBytes: 64, Policy: cache.LRU}
	candidates := []uint64{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}
	sizing, err := core.ChooseStaticSizes(l2stream, baseSeg, candidates, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsizing search (tolerance 2 miss-rate points):\n")
	fmt.Printf("  user segment:   %d KB (miss %.1f%%)\n", sizing.UserSize>>10, sizing.UserPoint.MissRate*100)
	fmt.Printf("  kernel segment: %d KB (miss %.1f%%)\n", sizing.KernelSize>>10, sizing.KernelPoint.MissRate*100)
	fmt.Printf("  total %d KB vs 1024 KB baseline (%.0f%% smaller), combined miss %.1f%% vs %.1f%%\n",
		sizing.TotalSize()>>10, (1-float64(sizing.TotalSize())/float64(1<<20))*100,
		sizing.CombinedMissRate*100, sizing.BaselineMissRate*100)

	// Step 3: measure block lifetimes on the SRAM partition and let the
	// library suggest a retention class per segment.
	spCfg, err := sim.MachineByName("sp")
	if err != nil {
		log.Fatal(err)
	}
	sp, err := sim.Build(spCfg)
	if err != nil {
		log.Fatal(err)
	}
	gen2, err := workload.NewGenerator(app, seed, uint64(accesses/app.Phases))
	if err != nil {
		log.Fatal(err)
	}
	sim.RunTrace(sp, app.Name, trace.NewLimitSource(gen2, accesses), 0)
	fmt.Printf("\nretention matching:\n")
	for _, d := range []trace.Domain{trace.User, trace.Kernel} {
		lt := sp.Static.SegmentCache(d).Stats().Lifetimes[d]
		tech := sttram.DomainFor(lt, 0.05)
		fmt.Printf("  %-6s segment: mean block lifetime %.2g cycles -> %s\n", d, lt.Mean(), tech)
	}

	// Assemble and run the resulting multi-retention machine.
	spmr, err := sim.MachineByName("sp-mr")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sim.RunWorkload(spmr, app, seed, accesses)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmulti-retention static partition on %s:\n", app.Name)
	fmt.Printf("  L2 energy %.3g J vs baseline %.3g J -> %.1f%% saving\n",
		rep.L2EnergyJ(), baseRep.L2EnergyJ(), (1-rep.L2EnergyJ()/baseRep.L2EnergyJ())*100)
	fmt.Printf("  IPC %.4f vs baseline %.4f -> %.1f%% loss\n",
		rep.IPC(), baseRep.IPC(), (1-rep.IPC()/baseRep.IPC())*100)
}
