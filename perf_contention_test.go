// Contention contract of the lock-striped caching layer (PR 7). Both
// hot caches — the engine run memo and the trace arena — used to
// serialize every lookup on one global mutex; internal/shardlru
// stripes them across per-shard locks. This file hammers a warm memo
// and a warm arena with 32 goroutines in the access pattern a sweep
// produces (each worker looks up its own cells' keys) and records two
// quantities per cache in BENCH_PR7.json, global-lock baseline
// (1 shard) versus the shipped sharded configuration:
//
//   - wall-clock throughput (ops/sec): scales near-linearly with
//     available cores once striped, because workers on different
//     shards never serialize;
//   - aggregate mutex wait (runtime/metrics
//     "/sync/mutex/wait/total:seconds"): the time goroutines spend
//     blocked on the cache locks — the direct, core-count-independent
//     measurement of the contention sharding removes.
//
// Regenerate with
//
//	make bench-contention   # = MC_BENCH_JSON=1 go test -run TestEmitBenchJSONPR7 -count=1 -v .
//
// The box this repo is developed on has one schedulable CPU, so the
// emitter raises GOMAXPROCS to contentionGOMAXPROCS for its duration
// (the standard -cpu=N methodology) and records both that and the
// physical core count. On one core the throughput columns read near
// parity — with no parallelism there is no wall-clock time to win —
// while the lock-wait columns still expose the serialization: the
// global-lock arms accrue seconds of blocked time that the sharded
// arms reduce by well over the 4x acceptance bar (the memo's drops to
// the metric's resolution floor). On a multicore runner the same
// harness shows the wait gap as a throughput gap.
//
// TestContentionSmoke is the structural gate CI runs (tiny op counts,
// no throughput or wait thresholds — machine speed is not a pass/fail
// criterion): it proves the harness, both cache shapes and the report
// schema still hold together.
package mobilecache

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/metrics"
	"sync"
	"testing"
	"time"

	"mobilecache/internal/shardlru"
	"mobilecache/internal/sim"
	"mobilecache/internal/tracestore"
	"mobilecache/internal/workload"
)

const (
	// contentionGoroutines is the hammer width: comfortably past any
	// -jobs setting the front ends ship with.
	contentionGoroutines = 32
	// contentionGOMAXPROCS is forced during measurement so the scheduler
	// actually multiplexes all 32 hammers (see the package comment).
	contentionGOMAXPROCS = 32
	// contentionMemoKeysPerWorker spaces the workers' keys apart in the
	// warm population; the memo holds every worker's slice, so the
	// measurement never misses or evicts.
	contentionMemoKeysPerWorker = 32
	// contentionArenaAccesses is each warm trace's length — small, so
	// warming is cheap and the per-op cost is lock-dominated, which is
	// the point.
	contentionArenaAccesses = 10_000
	// contentionArenaProfiles x contentionArenaSeeds = one warm trace
	// per hammer: every worker replays its own cell's trace, the
	// pattern a sweep's grid produces.
	contentionArenaProfiles = 8
	contentionArenaSeeds    = 4
)

// mutexWaitSeconds reads the runtime's cumulative count of time
// goroutines have spent blocked on sync.Mutex/RWMutex. Deltas around a
// hammer isolate the wait its cache locks caused.
func mutexWaitSeconds() float64 {
	s := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(s)
	return s[0].Value.Float64()
}

// hammer runs workers goroutines, each performing ops calls of op, and
// returns the aggregate operations per second plus the mutex wait
// accrued during the run. op receives the worker index and iteration
// so it can derive a deterministic per-worker key stream without
// shared RNG state (which would itself contend).
func hammer(workers, ops int, op func(worker, i int)) (opsPerSec, lockWait float64) {
	var wg sync.WaitGroup
	start := make(chan struct{})
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < ops; i++ {
				op(g, i)
			}
		}(g)
	}
	waitBefore := mutexWaitSeconds()
	begin := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(begin)
	return float64(workers*ops) / elapsed.Seconds(), mutexWaitSeconds() - waitBefore
}

// warmMemoShape builds a memo-shaped cache (cost 1 per entry, report
// values) with the given stripe count and prefills every worker's key
// stream, so the hammer measures pure warm-hit lookups.
func warmMemoShape(tb testing.TB, shards, workers int) *shardlru.Cache[uint64, sim.RunReport] {
	tb.Helper()
	keys := workers * contentionMemoKeysPerWorker
	c := shardlru.New(shardlru.Config[uint64, sim.RunReport]{
		Shards: shards,
		Budget: int64(2 * keys),
		Hash:   shardlru.Mix64,
	})
	for k := 0; k < keys; k++ {
		c.Add(uint64(k), sim.RunReport{Machine: "bench", Workload: "bench"}, 1)
	}
	if got := c.Len(); got != keys {
		tb.Fatalf("warm memo holds %d entries, want %d", got, keys)
	}
	return c
}

// memoKey is worker g's current cell's key: a sweep worker re-consults
// the memo for its own cell, so the hot keys are disjoint across
// workers (not a shared random mix, which would collide workers onto
// each other's shards regardless of striping).
func memoKey(g, _ int) uint64 {
	return uint64(g * contentionMemoKeysPerWorker)
}

// memoContention hammers a warm memo-shaped cache with per-worker key
// streams and returns throughput and accrued lock wait.
func memoContention(tb testing.TB, shards, workers, ops int) (float64, float64) {
	c := warmMemoShape(tb, shards, workers)
	return hammer(workers, ops, func(g, i int) {
		if _, ok := c.Get(memoKey(g, i)); !ok {
			panic("contention bench: warm memo key missing")
		}
	})
}

// arenaCell is worker g's pinned (profile, seed) cell.
func arenaCell(profiles []workload.Profile, g int) (workload.Profile, uint64) {
	return profiles[g%len(profiles)], 1 + uint64(g/len(profiles))%contentionArenaSeeds
}

// warmArena builds a trace arena with the given stripe count and an
// unlimited budget (no demotion or eviction noise), warmed with every
// worker's trace.
func warmArena(tb testing.TB, shards, workers int) (*tracestore.Store, []workload.Profile) {
	tb.Helper()
	store := tracestore.NewSharded(0, shards)
	profiles := workload.Profiles()[:contentionArenaProfiles]
	for g := 0; g < workers; g++ {
		p, seed := arenaCell(profiles, g)
		if _, err := store.GetTrace(p, seed, contentionArenaAccesses); err != nil {
			tb.Fatal(err)
		}
	}
	return store, profiles
}

// arenaContention hammers a warm arena with GetTrace calls — the exact
// call the engine makes per cell, including the shard-locked read of
// the hot decoded slice — each worker on its own cell's trace.
func arenaContention(tb testing.TB, shards, workers, ops int) (float64, float64) {
	store, profiles := warmArena(tb, shards, workers)
	return hammer(workers, ops, func(g, i int) {
		p, seed := arenaCell(profiles, g)
		if _, err := store.GetTrace(p, seed, contentionArenaAccesses); err != nil {
			panic(err)
		}
	})
}

// BenchmarkMemoLookupGlobal / BenchmarkMemoLookupSharded are the
// go-test-native views of the same contention (use -cpu=32):
//
//	go test -bench 'MemoLookup' -cpu 32 .
func BenchmarkMemoLookupGlobal(b *testing.B)  { benchMemoLookup(b, 1) }
func BenchmarkMemoLookupSharded(b *testing.B) { benchMemoLookup(b, contentionGOMAXPROCS) }

func benchMemoLookup(b *testing.B, shards int) {
	c := warmMemoShape(b, shards, contentionGoroutines)
	keys := uint64(contentionGoroutines * contentionMemoKeysPerWorker)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		x := uint64(0)
		for pb.Next() {
			x = shardlru.Mix64(x)
			c.Get(x % keys)
		}
	})
}

// contentionArm is one cache shape's measured pair of arms.
type contentionArm struct {
	GlobalOpsPerSec    float64 `json:"global_ops_per_sec"`
	ShardedOpsPerSec   float64 `json:"sharded_ops_per_sec"`
	ThroughputSpeedup  float64 `json:"throughput_speedup"`
	GlobalLockWaitSec  float64 `json:"global_lock_wait_seconds"`
	ShardedLockWaitSec float64 `json:"sharded_lock_wait_seconds"`
	LockWaitReduction  float64 `json:"lock_wait_reduction"`
	Shards             int     `json:"sharded_shards"`
	OpsPerGoroutine    int     `json:"ops_per_goroutine"`
}

// contentionReport is the BENCH_PR7.json schema. lock_wait_reduction
// is the contention headline (global wait / sharded wait, sharded
// floored at 1ms so an unmeasurably small sharded wait reads as a
// large finite factor, not infinity); throughput_speedup is the
// wall-clock view, which tracks the same factor on multicore hosts and
// reads near 1.0 when physical_cpus is 1.
type contentionReport struct {
	GoVersion    string        `json:"go_version"`
	PhysicalCPUs int           `json:"physical_cpus"`
	GOMAXPROCS   int           `json:"gomaxprocs"`
	Goroutines   int           `json:"goroutines"`
	Rounds       int           `json:"rounds"`
	Memo         contentionArm `json:"memo"`
	Arena        contentionArm `json:"arena"`
}

// waitReduction is globalSec/shardedSec with the denominator floored
// at the metric's practical resolution.
func waitReduction(globalSec, shardedSec float64) float64 {
	const floor = 1e-3
	if shardedSec < floor {
		shardedSec = floor
	}
	return globalSec / shardedSec
}

// TestEmitBenchJSONPR7 measures the sharding win and writes
// BENCH_PR7.json. Like the other emitters it is a measurement, not a
// machine-speed gate, so it only runs when explicitly requested:
//
//	MC_BENCH_JSON=1 go test -run TestEmitBenchJSONPR7 -count=1 -v .
func TestEmitBenchJSONPR7(t *testing.T) {
	if os.Getenv("MC_BENCH_JSON") == "" {
		t.Skip("set MC_BENCH_JSON=1 to measure and write BENCH_PR7.json")
	}
	prev := runtime.GOMAXPROCS(contentionGOMAXPROCS)
	defer runtime.GOMAXPROCS(prev)

	rep := contentionReport{
		GoVersion:    runtime.Version(),
		PhysicalCPUs: runtime.NumCPU(),
		GOMAXPROCS:   contentionGOMAXPROCS,
		Goroutines:   contentionGoroutines,
		Rounds:       3,
		Memo:         contentionArm{Shards: contentionGOMAXPROCS, OpsPerGoroutine: 100_000},
		Arena:        contentionArm{Shards: tracestore.DefaultShards, OpsPerGoroutine: 20_000},
	}

	// Interleave the rounds so one scheduler hiccup cannot fabricate or
	// erase the gap in either direction: keep each arm's best throughput
	// and accumulate its lock wait across rounds (wait is a cumulative
	// cost, so summing is fairer to the global arm than best-of).
	measure := func(arm *contentionArm, run func(shards int) (float64, float64)) {
		if ops, wait := run(1); true {
			if ops > arm.GlobalOpsPerSec {
				arm.GlobalOpsPerSec = ops
			}
			arm.GlobalLockWaitSec += wait
		}
		if ops, wait := run(arm.Shards); true {
			if ops > arm.ShardedOpsPerSec {
				arm.ShardedOpsPerSec = ops
			}
			arm.ShardedLockWaitSec += wait
		}
	}
	for round := 0; round < rep.Rounds; round++ {
		measure(&rep.Memo, func(shards int) (float64, float64) {
			return memoContention(t, shards, contentionGoroutines, rep.Memo.OpsPerGoroutine)
		})
		measure(&rep.Arena, func(shards int) (float64, float64) {
			return arenaContention(t, shards, contentionGoroutines, rep.Arena.OpsPerGoroutine)
		})
	}
	rep.Memo.ThroughputSpeedup = rep.Memo.ShardedOpsPerSec / rep.Memo.GlobalOpsPerSec
	rep.Memo.LockWaitReduction = waitReduction(rep.Memo.GlobalLockWaitSec, rep.Memo.ShardedLockWaitSec)
	rep.Arena.ThroughputSpeedup = rep.Arena.ShardedOpsPerSec / rep.Arena.GlobalOpsPerSec
	rep.Arena.LockWaitReduction = waitReduction(rep.Arena.GlobalLockWaitSec, rep.Arena.ShardedLockWaitSec)

	for _, a := range []struct {
		name string
		arm  contentionArm
	}{{"memo", rep.Memo}, {"arena", rep.Arena}} {
		t.Logf("%s: global %.0f ops/s with %.3fs lock wait; sharded(%d) %.0f ops/s with %.3fs lock wait; %.2fx throughput, %.1fx wait reduction",
			a.name, a.arm.GlobalOpsPerSec, a.arm.GlobalLockWaitSec, a.arm.Shards,
			a.arm.ShardedOpsPerSec, a.arm.ShardedLockWaitSec,
			a.arm.ThroughputSpeedup, a.arm.LockWaitReduction)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR7.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestContentionSmoke is the CI gate: a miniature pass over both cache
// shapes and the report schema. No throughput or wait assertions —
// those depend on the runner — so it cannot flake on a loaded machine;
// it verifies structure (warm caches serve every hammered key, the
// hit arithmetic reconciles, the JSON marshals).
func TestContentionSmoke(t *testing.T) {
	const workers, ops = 4, 200
	for _, shards := range []int{1, 4} {
		if v, _ := memoContention(t, shards, workers, ops); v <= 0 {
			t.Fatalf("memo shards=%d: ops/sec = %v, want > 0", shards, v)
		}
		if v, _ := arenaContention(t, shards, workers, ops); v <= 0 {
			t.Fatalf("arena shards=%d: ops/sec = %v, want > 0", shards, v)
		}
	}
	// The warm memo hammer must account every lookup as a hit; re-run
	// one small pass on an inspectable cache to check the arithmetic.
	c := warmMemoShape(t, 4, workers)
	hammer(workers, ops, func(g, i int) {
		c.Get(memoKey(g, i))
	})
	st := c.Stats()
	if st.Hits != uint64(workers*ops) {
		t.Fatalf("warm hammer: %d hits, want %d (misses %d)", st.Hits, workers*ops, st.Misses)
	}
	if _, err := json.Marshal(contentionReport{GoVersion: runtime.Version()}); err != nil {
		t.Fatalf("report schema does not marshal: %v", err)
	}
}
