// Package mobilecache is the public API of the mobilecache simulator —
// a reproduction of "Energy-efficient cache design in emerging mobile
// platforms" (DATE 2015; TODAES 22(4) 2017) by Yan, Peng, Chen and Fu.
//
// The library simulates a mobile SoC memory hierarchy (in-order core,
// split L1s, shared L2, LPDDR-class DRAM) driven by synthetic
// interactive-app traces whose accesses are tagged with the privilege
// domain (user / OS kernel), and implements the paper's three L2
// designs on top of it:
//
//   - a static user/kernel partition with shrunk segment sizes,
//   - the same partition built from multi-retention STT-RAM, and
//   - a dynamic way-partitioned design that power-gates surplus ways,
//     optionally in short-retention STT-RAM.
//
// Quick start:
//
//	app, _ := mobilecache.ProfileByName("browser")
//	baseline, _ := mobilecache.StandardMachine("baseline-sram")
//	rep, _ := mobilecache.Run(baseline, app, 1, 200_000)
//	fmt.Println(rep.L2EnergyJ(), rep.IPC())
//
// Every table and figure of the paper's evaluation can be regenerated
// via RunExperiment (IDs E1..E12, T1, T2) or the cmd/mcbench tool.
package mobilecache

import (
	"mobilecache/internal/config"
	"mobilecache/internal/experiments"
	"mobilecache/internal/sim"
	"mobilecache/internal/trace"
	"mobilecache/internal/workload"
)

// Domain identifies the privilege level of an access.
type Domain = trace.Domain

// Domain values.
const (
	User   = trace.User
	Kernel = trace.Kernel
)

// Access is one memory-trace record.
type Access = trace.Access

// Op is a memory operation kind.
type Op = trace.Op

// Op values.
const (
	Load   = trace.Load
	Store  = trace.Store
	Ifetch = trace.Ifetch
)

// Profile parameterizes a synthetic mobile application.
type Profile = workload.Profile

// Machine is a declarative machine description.
type Machine = config.Machine

// RunReport is the outcome of one simulation.
type RunReport = sim.RunReport

// ExperimentResult is a regenerated paper table/figure.
type ExperimentResult = experiments.Result

// ExperimentOptions scales an experiment run.
type ExperimentOptions = experiments.Options

// Profiles returns the ten interactive-app profiles of the evaluation.
func Profiles() []Profile { return workload.Profiles() }

// ProfileByName finds an app profile by name.
func ProfileByName(name string) (Profile, error) { return workload.ProfileByName(name) }

// GenerateTrace materializes n accesses of an app profile.
func GenerateTrace(p Profile, seed uint64, n int) ([]Access, error) {
	return workload.Generate(p, seed, n)
}

// StandardMachines returns the six machine configurations the paper
// compares (baseline-sram, baseline-stt, sp, sp-mr, dp, dp-sr).
func StandardMachines() []Machine { return sim.StandardMachines() }

// StandardMachine finds one standard machine by name.
func StandardMachine(name string) (Machine, error) { return sim.MachineByName(name) }

// DefaultMachine is the 1MB SRAM baseline all comparisons normalize to.
func DefaultMachine() Machine { return config.Default() }

// Run simulates an app on a machine and reports timing, cache and
// energy statistics. Machines are built fresh (cold caches) per run.
func Run(m Machine, p Profile, seed uint64, accesses int) (RunReport, error) {
	return sim.RunWorkload(m, p, seed, accesses)
}

// ExperimentIDs lists the reproducible paper experiments in order.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one paper table/figure by ID.
func RunExperiment(id string, opts ExperimentOptions) (ExperimentResult, error) {
	return experiments.Run(id, opts)
}

// DefaultExperimentOptions is the full-scale experiment configuration.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }
