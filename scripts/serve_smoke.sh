#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of cmd/mcserved: boot the
# daemon against a scratch store, submit a tiny sweep over HTTP, stream
# its results, download the CSV, check the health and metrics
# endpoints, then shut down gracefully with SIGTERM and require a clean
# exit. Needs only a shell and curl; run via `make serve-smoke`.
set -eu

PORT="${MC_SMOKE_PORT:-18347}"
ADDR="127.0.0.1:$PORT"
GO="${GO:-go}"

WORK="$(mktemp -d)"
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
    echo "serve-smoke: FAIL: $*" >&2
    [ -f "$WORK/served.log" ] && sed 's/^/serve-smoke: daemon: /' "$WORK/served.log" >&2
    [ -f "$WORK/served2.log" ] && sed 's/^/serve-smoke: daemon2: /' "$WORK/served2.log" >&2
    exit 1
}

echo "serve-smoke: building mcserved"
"$GO" build -o "$WORK/mcserved" ./cmd/mcserved

cat > "$WORK/spec.json" <<'SPEC'
{
  "machines": ["baseline-sram", "sp-mr"],
  "apps": ["browser"],
  "seeds": [1, 2],
  "accesses": 20000
}
SPEC

echo "serve-smoke: starting daemon on $ADDR"
"$WORK/mcserved" -addr "$ADDR" -data "$WORK/store" -drain-timeout 20s \
    > "$WORK/served.log" 2>&1 &
SRV_PID=$!

# Wait for liveness.
i=0
until curl -sf "http://$ADDR/healthz" > /dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "/healthz never came up"
    kill -0 "$SRV_PID" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
done

echo "serve-smoke: submitting sweep"
SUBMIT="$(curl -sf -XPOST --data-binary @"$WORK/spec.json" "http://$ADDR/jobs")" \
    || fail "submit rejected"
ID="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p' | head -n1)"
[ -n "$ID" ] || fail "no job id in submit response: $SUBMIT"
echo "serve-smoke: job $ID accepted"

echo "serve-smoke: streaming results"
curl -sfN "http://$ADDR/jobs/$ID/results" > "$WORK/stream.jsonl" \
    || fail "streaming results failed"
CELLS="$(grep -c '"type":"cell"' "$WORK/stream.jsonl" || true)"
grep -q '"type":"done"' "$WORK/stream.jsonl" || fail "stream ended without a done event"
grep -q '"state":"done"' "$WORK/stream.jsonl" || fail "job did not finish clean: $(tail -n1 "$WORK/stream.jsonl")"
[ "$CELLS" -eq 4 ] || fail "streamed $CELLS cell events, want 4"

echo "serve-smoke: downloading CSV"
curl -sf "http://$ADDR/jobs/$ID/csv" > "$WORK/result.csv" || fail "CSV download failed"
head -n1 "$WORK/result.csv" | grep -q '^machine,' || fail "CSV missing header"
LINES="$(wc -l < "$WORK/result.csv")"
[ "$LINES" -eq 5 ] || fail "CSV has $LINES lines, want header + 4 cells"

echo "serve-smoke: checking health and metrics"
curl -sf "http://$ADDR/readyz" > /dev/null || fail "/readyz not ready"
METRICS="$(curl -sf "http://$ADDR/metrics")" || fail "/metrics failed"
printf '%s\n' "$METRICS" | grep -q '^mcserved_cells_done_total 4$' \
    || fail "/metrics does not report 4 completed cells"
printf '%s\n' "$METRICS" | grep -q '^mcserved_jobs{state="done"} 1$' \
    || fail "/metrics does not report the finished job"
printf '%s\n' "$METRICS" | grep -q '^mcserved_queue_depth ' \
    || fail "/metrics missing queue depth"

echo "serve-smoke: graceful shutdown"
kill -TERM "$SRV_PID"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 300 ] && fail "daemon did not exit after SIGTERM"
    sleep 0.1
done
wait "$SRV_PID" 2>/dev/null && STATUS=0 || STATUS=$?
[ "$STATUS" -eq 0 ] || fail "daemon exited $STATUS after SIGTERM"
grep -q "drained cleanly" "$WORK/served.log" || fail "daemon log missing clean-drain line"
SRV_PID=""

# --- degraded mode: a full disk must shed admissions, not corrupt ---
# Boot a second daemon with an injected ENOSPC streak (MCSERVED_FAULT
# test hook): every write/sync in the global op window [8, 808) fails,
# so the store breaks right after startup and heals once the probe
# writes burn through the window. The daemon must flip /readyz to
# degraded, shed submissions with 503, count the I/O errors in
# /metrics, then recover on its own and accept work again.
echo "serve-smoke: degraded-mode episode (injected ENOSPC streak)"
MCSERVED_FAULT="enospc:after=8:streak=800" \
    "$WORK/mcserved" -addr "$ADDR" -data "$WORK/store2" \
    -drain-timeout 20s -probe-interval 25ms \
    > "$WORK/served2.log" 2>&1 &
SRV_PID=$!

i=0
until curl -sf "http://$ADDR/healthz" > /dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "degraded daemon: /healthz never came up"
    kill -0 "$SRV_PID" 2>/dev/null || fail "degraded daemon exited during startup"
    sleep 0.1
done

# The first submission trips the streak (either the admission writes or
# the job's journal fail) and flips the daemon into degraded mode.
curl -s -XPOST --data-binary @"$WORK/spec.json" "http://$ADDR/jobs" > /dev/null || true
i=0
until curl -s "http://$ADDR/metrics" | grep -q '^mcserved_degraded 1$'; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && fail "daemon never reported degraded after ENOSPC"
    sleep 0.1
done

CODE="$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/readyz")"
[ "$CODE" = "503" ] || fail "/readyz while degraded returned $CODE, want 503"
CODE="$(curl -s -o /dev/null -w '%{http_code}' -XPOST \
    --data-binary @"$WORK/spec.json" "http://$ADDR/jobs")"
[ "$CODE" = "503" ] || fail "degraded submit returned $CODE, want 503 shed"
curl -s "http://$ADDR/metrics" | grep -q '^mcserved_io_errors_total [1-9]' \
    || fail "/metrics io_errors_total did not count the fault"

echo "serve-smoke: degraded confirmed; waiting for self-recovery"
i=0
until [ "$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/readyz")" = "200" ]; do
    i=$((i + 1))
    [ "$i" -gt 600 ] && fail "daemon never recovered after the streak ended"
    sleep 0.1
done
curl -s "http://$ADDR/metrics" | grep -q '^mcserved_degraded 0$' \
    || fail "degraded gauge did not clear after recovery"

# Admission is open again: a fresh sweep must run to completion.
SUBMIT="$(curl -sf -XPOST --data-binary @"$WORK/spec.json" "http://$ADDR/jobs")" \
    || fail "post-recovery submit rejected"
ID2="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": *"\([0-9a-f]*\)".*/\1/p' | head -n1)"
[ -n "$ID2" ] || fail "no job id in post-recovery submit: $SUBMIT"
curl -sfN "http://$ADDR/jobs/$ID2/results" > "$WORK/stream2.jsonl" \
    || fail "post-recovery stream failed"
grep -q '"state":"done"' "$WORK/stream2.jsonl" \
    || fail "post-recovery job did not finish clean: $(tail -n1 "$WORK/stream2.jsonl")"

kill -TERM "$SRV_PID"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -gt 300 ] && fail "degraded daemon did not exit after SIGTERM"
    sleep 0.1
done
wait "$SRV_PID" 2>/dev/null && STATUS=0 || STATUS=$?
[ "$STATUS" -eq 0 ] || fail "degraded daemon exited $STATUS after SIGTERM"
SRV_PID=""

echo "serve-smoke: PASS"
